package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"lpltsp/internal/coloring"
	"lpltsp/internal/labeling"
	"lpltsp/internal/pathpart"
	"lpltsp/internal/tsp"
)

// MethodName identifies a solving method in the method registry — the
// algorithm-family layer above the TSP engine registry. Where an engine
// answers "how do we solve path TSP", a method answers "which of the
// paper's algorithms solves this labeling instance at all".
type MethodName string

const (
	// MethodReduction is Theorem 2: reduce to METRIC PATH TSP and run a
	// TSP engine (or the portfolio). Needs a connected graph with
	// diam(G) ≤ dim(p) and pmax ≤ 2·pmin.
	MethodReduction MethodName = "reduction"
	// MethodTree is the Chang–Kuo-style exact L(2,1) tree algorithm — the
	// class-specific polynomial route the paper contrasts with the
	// reduction. Needs a tree and p = (2,1).
	MethodTree MethodName = "tree"
	// MethodDiameter2 is Corollary 2: PARTITION INTO PATHS on G or its
	// complement. Needs k = 2, diam(G) ≤ 2, and pmax ≤ 2·pmin; exact up
	// to the subset DP's reach, a cotree/greedy upper bound beyond.
	MethodDiameter2 MethodName = "diameter2"
	// MethodFPTColoring is Theorem 4: for uniform p = (c,…,c), an optimal
	// labeling is c times an optimal coloring of Gᵏ, computed FPT in
	// neighborhood diversity. No diameter condition.
	MethodFPTColoring MethodName = "fpt-coloring"
	// MethodPmaxApprox is Corollary 3: scale an optimal coloring of Gᵏ by
	// pmax — a pmax-approximation for any p on any graph. The planner's
	// fallback when the reduction's hypotheses fail.
	MethodPmaxApprox MethodName = "pmax-approx"
	// MethodGreedy is the first-fit baseline: valid on every graph and
	// every p, no quality guarantee. The planner's last resort, keeping
	// the solve pipeline total over inputs.
	MethodGreedy MethodName = "greedy"
	// MethodComponents is the provenance tag of decomposed solves: the
	// input was disconnected, each component was planned and solved
	// independently, and λ is the max over components.
	MethodComponents MethodName = "components"
	// MethodTrivial tags the fast path for instances with nothing to
	// decide: n ≤ 1 or pmax = 0, where the all-zero labeling is optimal.
	MethodTrivial MethodName = "trivial"
)

// Applicability is a method's self-assessment for one probed instance.
type Applicability struct {
	// OK reports whether the method can run on this instance at all.
	OK bool
	// Exact reports that the method would return a provably optimal span.
	Exact bool
	// Approx is the guaranteed approximation factor when OK and not
	// exact; 0 means no guarantee (heuristic).
	Approx float64
	// Cost is a relative running-cost estimate used to rank applicable
	// methods (same scale across methods; smaller is cheaper).
	Cost float64
	// Reason explains the verdict in one human-readable clause — the
	// planner surfaces it through Explain and lplsolve -explain.
	Reason string
	// Err is the typed error to return when the caller forced this
	// method and it is not applicable (errors.Is-compatible with the
	// reduction's precondition errors). Nil when OK.
	Err error
}

// Tier buckets methods by result quality for planner ranking: 0 exact,
// 1 bounded approximation, 2 unbounded heuristic.
func (a Applicability) Tier() int {
	switch {
	case a.Exact:
		return 0
	case a.Approx > 0:
		return 1
	default:
		return 2
	}
}

// Method is a pluggable labeling algorithm: it inspects a probed instance,
// declares whether and how well it applies, and solves. Implementations
// must be stateless (one value serves all goroutines); per-solve state
// lives in the Probe and the engines underneath.
type Method interface {
	Name() MethodName
	// Check reports applicability on the probed instance. opts carries
	// the caller's engine pinning (Options.Algorithm), which affects the
	// reduction's exactness and cost; it may be nil.
	Check(pr *Probe, p labeling.Vector, opts *Options) Applicability
	// Solve runs the method. Called only after Check returned OK (or
	// when the caller forced the method, in which case implementations
	// re-validate and return Applicability.Err-style typed errors).
	Solve(ctx context.Context, pr *Probe, p labeling.Vector, opts *Options) (*Result, error)
}

var (
	methodMu    sync.RWMutex
	methodReg   = map[MethodName]Method{}
	methodOrder []MethodName
)

// RegisterMethod adds a method to the planner's registry. Like the engine
// registry, names are dispatch surface: empty names, nil methods, and
// duplicates panic.
func RegisterMethod(m Method) {
	if m == nil {
		panic("core: RegisterMethod with nil method")
	}
	name := m.Name()
	if name == "" {
		panic("core: RegisterMethod with empty method name")
	}
	methodMu.Lock()
	defer methodMu.Unlock()
	if _, dup := methodReg[name]; dup {
		panic(fmt.Sprintf("core: RegisterMethod called twice for %q", name))
	}
	methodReg[name] = m
	methodOrder = append(methodOrder, name)
}

// LookupMethod returns the registered method of that name.
func LookupMethod(name MethodName) (Method, error) {
	methodMu.RLock()
	m, ok := methodReg[name]
	methodMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown method %q", name)
	}
	return m, nil
}

// Methods lists the registered method names in registration order (the
// planner's tie-break order: reduction first, greedy last).
func Methods() []MethodName {
	methodMu.RLock()
	defer methodMu.RUnlock()
	return append([]MethodName(nil), methodOrder...)
}

func init() {
	RegisterMethod(reductionMethod{})
	RegisterMethod(treeMethod{})
	RegisterMethod(diameter2Method{})
	RegisterMethod(fptColoringMethod{})
	RegisterMethod(pmaxApproxMethod{})
	RegisterMethod(greedyMethod{})
}

// expCost caps the exponent so cost comparisons stay finite.
func expCost(n int) float64 {
	if n > 64 {
		n = 64
	}
	return math.Exp2(float64(n))
}

// ndProbeMaxN caps the instances on which the planner will build Gᵏ and
// compute its neighborhood diversity during applicability checks: the
// probe is O(n²)–O(nm) work, which must stay small next to the solve it
// is routing.
const ndProbeMaxN = 512

// ---------------------------------------------------------------------------
// reduction

type reductionMethod struct{}

func (reductionMethod) Name() MethodName { return MethodReduction }

// effectiveReductionAlgo resolves the engine the reduction method would
// run: the pinned Options.Algorithm when set, otherwise the exact engine
// within its reach and the portfolio roster beyond it.
func effectiveReductionAlgo(pr *Probe, opts *Options) tsp.Algorithm {
	if opts != nil && opts.Algorithm != "" {
		return opts.Algorithm
	}
	if pr.N <= tsp.BnBMaxN {
		return tsp.AlgoExact
	}
	return AlgoPortfolio
}

func (reductionMethod) Check(pr *Probe, p labeling.Vector, opts *Options) Applicability {
	if !p.SatisfiesReductionCondition() {
		pmin, pmax := p.MinMax()
		return Applicability{
			Reason: fmt.Sprintf("pmax=%d > 2·pmin=%d breaks Theorem 2's metric condition", pmax, 2*pmin),
			Err:    fmt.Errorf("%w (pmin=%d, pmax=%d)", ErrConditionViolated, pmin, pmax),
		}
	}
	if !pr.Connected {
		return Applicability{Reason: "graph is disconnected; reduction weights undefined across components", Err: ErrDisconnected}
	}
	if pr.Diameter > p.K() {
		return Applicability{
			Reason: fmt.Sprintf("diameter %d > k=%d leaves some pair weight undefined", pr.Diameter, p.K()),
			Err:    fmt.Errorf("%w (diameter %d > k=%d)", ErrDiameterExceedsK, pr.Diameter, p.K()),
		}
	}
	n := pr.N
	algo := effectiveReductionAlgo(pr, opts)
	a := Applicability{OK: true}
	switch algo {
	case tsp.AlgoExact, tsp.AlgoHeldKarp, tsp.AlgoBnB:
		a.Exact = true
		a.Cost = expCost(n) * float64(n*n)
		a.Reason = fmt.Sprintf("diam %d ≤ k=%d, pmax ≤ 2·pmin; exact engine %s", pr.Diameter, p.K(), algo)
	case AlgoPortfolio:
		roster := DefaultPortfolioEngines(n)
		if opts != nil && len(opts.Engines) > 0 {
			roster = opts.Engines
		}
		hasExact, hasApprox := false, false
		for _, e := range roster {
			switch e {
			case tsp.AlgoExact, tsp.AlgoHeldKarp, tsp.AlgoBnB:
				hasExact = true
			case tsp.AlgoChristofides:
				hasApprox = true
			}
		}
		switch {
		case hasExact && n <= tsp.BnBMaxN:
			a.Exact = true
			a.Cost = expCost(n) * float64(n*n)
			a.Reason = fmt.Sprintf("diam %d ≤ k=%d; portfolio race includes the exact engine (n ≤ %d)", pr.Diameter, p.K(), tsp.BnBMaxN)
		case hasApprox:
			a.Approx = 1.5
			a.Cost = float64(n) * float64(n) * float64(n)
			a.Reason = fmt.Sprintf("diam %d ≤ k=%d; heuristic portfolio with the 1.5-approximation", pr.Diameter, p.K())
		default:
			a.Cost = float64(n) * float64(n) * float64(n)
			a.Reason = fmt.Sprintf("diam %d ≤ k=%d; heuristic-only portfolio roster", pr.Diameter, p.K())
		}
	case tsp.AlgoChristofides:
		a.Approx = 1.5
		a.Cost = float64(n) * float64(n) * float64(n)
		a.Reason = fmt.Sprintf("diam %d ≤ k=%d; Christofides/Hoogeveen 1.5-approximation", pr.Diameter, p.K())
	default:
		a.Cost = float64(n) * float64(n) * float64(n)
		a.Reason = fmt.Sprintf("diam %d ≤ k=%d; heuristic engine %s", pr.Diameter, p.K(), algo)
	}
	return a
}

func (reductionMethod) Solve(ctx context.Context, pr *Probe, p labeling.Vector, opts *Options) (*Result, error) {
	red, err := reduceFromProbe(pr, p)
	if err != nil {
		return nil, err
	}
	algo := effectiveReductionAlgo(pr, opts)
	var chained *tsp.ChainedOptions
	if opts != nil {
		chained = opts.Chained
	}
	if algo == AlgoPortfolio {
		var engines []tsp.Algorithm
		if opts != nil {
			engines = opts.Engines
		}
		res, err := portfolioOverReduction(ctx, red, chained, engines)
		if err != nil {
			return nil, err
		}
		res.Method = MethodReduction
		return res, nil
	}
	t1 := time.Now()
	tour, stats, err := tsp.SolveContext(ctx, red.Instance, algo, &tsp.SolveOptions{Chained: chained})
	if err != nil {
		return nil, fmt.Errorf("core: tsp engine %q: %w", algo, err)
	}
	t2 := time.Now()
	res, err := red.resultFromTour(tour, algo, stats, false)
	if err != nil {
		return nil, err
	}
	res.SolveTime = t2.Sub(t1)
	res.Method = MethodReduction
	switch {
	case res.Exact:
		res.Approx = 1
	case algo == tsp.AlgoChristofides && !res.Truncated:
		res.Approx = 1.5
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// tree

type treeMethod struct{}

func (treeMethod) Name() MethodName { return MethodTree }

func isL21(p labeling.Vector) bool { return len(p) == 2 && p[0] == 2 && p[1] == 1 }

func (treeMethod) Check(pr *Probe, p labeling.Vector, _ *Options) Applicability {
	if !isL21(p) {
		return Applicability{Reason: "tree algorithm is specific to p = (2,1)"}
	}
	if !pr.Connected || pr.M != pr.N-1 {
		return Applicability{Reason: fmt.Sprintf("not a tree (n=%d, m=%d, connected=%v)", pr.N, pr.M, pr.Connected)}
	}
	return Applicability{
		OK:     true,
		Exact:  true,
		Cost:   float64(pr.N) * float64(pr.G.MaxDegree()+2),
		Reason: "tree with p = (2,1): Chang–Kuo Δ+1/Δ+2 decision is exact in polynomial time",
	}
}

func (treeMethod) Solve(_ context.Context, pr *Probe, p labeling.Vector, _ *Options) (*Result, error) {
	if !isL21(p) {
		return nil, fmt.Errorf("core: method %s needs p = (2,1), got %v", MethodTree, p)
	}
	lab, span, err := labeling.TreeLambda21(pr.G)
	if err != nil {
		return nil, fmt.Errorf("core: method %s: %w", MethodTree, err)
	}
	return &Result{Labeling: lab, Span: span, Exact: true, Approx: 1, Method: MethodTree}, nil
}

// ---------------------------------------------------------------------------
// diameter2

type diameter2Method struct{}

func (diameter2Method) Name() MethodName { return MethodDiameter2 }

func (diameter2Method) Check(pr *Probe, p labeling.Vector, _ *Options) Applicability {
	if len(p) != 2 {
		return Applicability{Reason: fmt.Sprintf("PARTITION INTO PATHS route needs k=2, got k=%d", len(p))}
	}
	if !p.SatisfiesReductionCondition() {
		pmin, pmax := p.MinMax()
		return Applicability{
			Reason: fmt.Sprintf("pmax=%d > 2·pmin=%d breaks Corollary 2's hypothesis", pmax, 2*pmin),
			Err:    fmt.Errorf("%w (p=%d, q=%d)", ErrConditionViolated, p[0], p[1]),
		}
	}
	if !pr.Connected {
		return Applicability{Reason: "graph is disconnected", Err: ErrDisconnected}
	}
	if pr.Diameter > 2 {
		return Applicability{
			Reason: fmt.Sprintf("diameter %d > 2", pr.Diameter),
			Err:    fmt.Errorf("%w (diameter %d > 2)", ErrDiameterExceedsK, pr.Diameter),
		}
	}
	if pr.N <= pathpart.ExactMaxN {
		return Applicability{
			OK:     true,
			Exact:  true,
			Cost:   expCost(pr.N) * float64(pr.N),
			Reason: fmt.Sprintf("diam ≤ 2, k=2: exact path-partition DP (n ≤ %d)", pathpart.ExactMaxN),
		}
	}
	return Applicability{
		OK:     true,
		Cost:   float64(pr.N) * float64(pr.N),
		Reason: fmt.Sprintf("diam ≤ 2, k=2 but n > %d: cotree/greedy partition gives an upper bound only", pathpart.ExactMaxN),
	}
}

func (diameter2Method) Solve(_ context.Context, pr *Probe, p labeling.Vector, _ *Options) (*Result, error) {
	if len(p) != 2 {
		return nil, fmt.Errorf("core: method %s needs k=2, got %v", MethodDiameter2, p)
	}
	d2, exact, err := solveDiameter2Partition(pr.G, p[0], p[1])
	if err != nil {
		return nil, err
	}
	res := &Result{Labeling: d2.Labeling, Span: d2.Span, Exact: exact, Method: MethodDiameter2}
	if exact {
		res.Approx = 1
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// fpt-coloring

type fptColoringMethod struct{}

func (fptColoringMethod) Name() MethodName { return MethodFPTColoring }

// uniformValue returns (c, true) when p = (c,…,c).
func uniformValue(p labeling.Vector) (int, bool) {
	for _, x := range p[1:] {
		if x != p[0] {
			return 0, false
		}
	}
	return p[0], true
}

func (fptColoringMethod) Check(pr *Probe, p labeling.Vector, _ *Options) Applicability {
	if _, ok := uniformValue(p); !ok {
		return Applicability{Reason: "p is not uniform; Theorem 4 covers L(c,…,c) only"}
	}
	if pr.N > ndProbeMaxN {
		return Applicability{Reason: fmt.Sprintf("n=%d exceeds the nd-probe budget %d", pr.N, ndProbeMaxN)}
	}
	ell := pr.NDOfPower(p.K())
	if ell > coloring.NDMaxClasses {
		return Applicability{Reason: fmt.Sprintf("nd(Gᵏ)=%d exceeds the FPT budget %d", ell, coloring.NDMaxClasses)}
	}
	return Applicability{
		OK:     true,
		Exact:  true,
		Cost:   float64(pr.N)*float64(pr.N) + expCost(ell)*float64(ell+1),
		Reason: fmt.Sprintf("uniform p: optimal coloring of Gᵏ scaled by c is exact (nd(Gᵏ)=%d)", ell),
	}
}

func (fptColoringMethod) Solve(_ context.Context, pr *Probe, p labeling.Vector, _ *Options) (*Result, error) {
	c, ok := uniformValue(p)
	if !ok {
		return nil, fmt.Errorf("core: method %s needs uniform p, got %v", MethodFPTColoring, p)
	}
	col, chi, err := coloring.NDExact(pr.PowerGraph(p.K()))
	if err != nil {
		return nil, fmt.Errorf("core: method %s: %w", MethodFPTColoring, err)
	}
	lab := make(labeling.Labeling, len(col))
	span := 0
	for v, x := range col {
		lab[v] = c * x
	}
	if chi > 0 {
		span = c * (chi - 1)
	}
	return &Result{Labeling: lab, Span: span, Exact: true, Approx: 1, Method: MethodFPTColoring}, nil
}

// ---------------------------------------------------------------------------
// pmax-approx

type pmaxApproxMethod struct{}

func (pmaxApproxMethod) Name() MethodName { return MethodPmaxApprox }

func (pmaxApproxMethod) Check(pr *Probe, p labeling.Vector, opts *Options) Applicability {
	// The first two gates are planner policy (don't pay the nd probe when
	// a strictly better method is known to apply), not applicability:
	// Corollary 3 itself holds on any graph. A caller pinning this method
	// skips them, so -method pmax-approx works wherever the nd budget
	// allows.
	forced := opts != nil && opts.Method == MethodPmaxApprox
	if !forced {
		if _, ok := uniformValue(p); ok {
			return Applicability{Reason: "uniform p is solved exactly by fpt-coloring"}
		}
		if pr.Connected && pr.Diameter <= p.K() && p.SatisfiesReductionCondition() {
			return Applicability{Reason: "superseded: the exact reduction applies to this instance"}
		}
	}
	if pr.N > ndProbeMaxN {
		return Applicability{Reason: fmt.Sprintf("n=%d exceeds the nd-probe budget %d", pr.N, ndProbeMaxN)}
	}
	ell := pr.NDOfPower(p.K())
	if ell > coloring.NDMaxClasses {
		return Applicability{Reason: fmt.Sprintf("nd(Gᵏ)=%d exceeds the FPT budget %d", ell, coloring.NDMaxClasses)}
	}
	pmin, pmax := p.MinMax()
	a := Applicability{
		OK:   true,
		Cost: float64(pr.N)*float64(pr.N) + expCost(ell)*float64(ell+1),
	}
	if pmin >= 1 {
		a.Approx = float64(pmax)
		a.Reason = fmt.Sprintf("Corollary 3 fallback: pmax-scaled coloring of Gᵏ, factor ≤ %d (nd(Gᵏ)=%d)", pmax, ell)
	} else {
		a.Reason = fmt.Sprintf("pmax-scaled coloring of Gᵏ; pmin=0 voids the factor guarantee (nd(Gᵏ)=%d)", ell)
	}
	return a
}

func (pmaxApproxMethod) Solve(_ context.Context, pr *Probe, p labeling.Vector, _ *Options) (*Result, error) {
	_, pmax := p.MinMax()
	col, chi, err := coloring.NDExact(pr.PowerGraph(p.K()))
	if err != nil {
		return nil, fmt.Errorf("core: method %s: %w", MethodPmaxApprox, err)
	}
	lab := make(labeling.Labeling, len(col))
	span := 0
	for v, x := range col {
		lab[v] = pmax * x
	}
	if chi > 0 {
		span = pmax * (chi - 1)
	}
	res := &Result{Labeling: lab, Span: span, Method: MethodPmaxApprox}
	if pmin, _ := p.MinMax(); pmin >= 1 {
		res.Approx = float64(pmax)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// greedy

type greedyMethod struct{}

func (greedyMethod) Name() MethodName { return MethodGreedy }

func (greedyMethod) Check(pr *Probe, p labeling.Vector, _ *Options) Applicability {
	_, pmax := p.MinMax()
	a := Applicability{
		OK:     true,
		Cost:   float64(pr.N) * float64(pr.N),
		Reason: "first-fit baseline: valid on every graph and p, no quality guarantee",
	}
	if pmax == 0 || pr.N <= 1 {
		a.Exact = true
		a.Approx = 1
		a.Reason = "degenerate instance: first-fit is trivially optimal"
	}
	return a
}

func (greedyMethod) Solve(_ context.Context, pr *Probe, p labeling.Vector, _ *Options) (*Result, error) {
	lab, span, err := labeling.GreedyFirstFitMatrix(pr.G, pr.Dist, p, labeling.OrderDegree)
	if err != nil {
		return nil, fmt.Errorf("core: method %s: %w", MethodGreedy, err)
	}
	res := &Result{Labeling: lab, Span: span, Method: MethodGreedy}
	_, pmax := p.MinMax()
	if pmax == 0 || pr.N <= 1 {
		res.Exact = true
		res.Approx = 1
	}
	return res, nil
}
