package tsp

import (
	"fmt"
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

// Compact-vs-dense benchmarks for the weight-class hot paths. Run with
//
//	go test -bench 'CompactVsDense' -benchmem ./internal/tsp/
//
// PR 2 before/after numbers are recorded in BENCH_PR2.json at the repo
// root.

func benchPair(n, k int) (compact, dense *Instance) {
	g := graph.RandomSmallDiameter(rng.New(77), n, k, 4.0/float64(n))
	dm := g.AllPairsDistances()
	classWeights := []int64{2, 2, 1, 1}[:k]
	compact = NewClassInstance(n, dm.Data(), classWeights)
	return compact, compact.Densify()
}

func BenchmarkNearestNeighborListsCompactVsDense(b *testing.B) {
	for _, n := range []int{200, 800} {
		compact, dense := benchPair(n, 4)
		for _, bc := range []struct {
			name string
			ins  *Instance
		}{{"compact", compact}, {"dense", dense}} {
			b.Run(fmt.Sprintf("%s/n=%d/k=12", bc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				sc := getTwoOptScratch(n, 12, bc.ins.Classes())
				defer putTwoOptScratch(sc)
				for i := 0; i < b.N; i++ {
					nearestNeighborsInto(bc.ins, 12, sc)
				}
			})
		}
	}
}

func BenchmarkGreedyEdgePathCompactVsDense(b *testing.B) {
	compact, dense := benchPair(800, 4)
	for _, bc := range []struct {
		name string
		ins  *Instance
	}{{"compact", compact}, {"dense", dense}} {
		b.Run(bc.name+"/n=800", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GreedyEdgePath(bc.ins)
			}
		})
	}
}

func BenchmarkTwoOptFastCompactVsDense(b *testing.B) {
	compact, dense := benchPair(400, 4)
	for _, bc := range []struct {
		name string
		ins  *Instance
	}{{"compact", compact}, {"dense", dense}} {
		b.Run(bc.name+"/n=400", func(b *testing.B) {
			b.ReportAllocs()
			r := rng.New(5)
			tour := Tour(r.Perm(400))
			work := make(Tour, 400)
			for i := 0; i < b.N; i++ {
				copy(work, tour)
				TwoOptPathFast(bc.ins, work, 12)
			}
		})
	}
}

// BenchmarkHeldKarpPooled tracks the exact DP's steady-state allocation
// behavior (tables pooled across solves).
func BenchmarkHeldKarpPooled(b *testing.B) {
	compact, _ := benchPair(16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := HeldKarpPath(compact); err != nil {
			b.Fatal(err)
		}
	}
}
