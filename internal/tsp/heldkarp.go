package tsp

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
)

// Held–Karp exact dynamic programming over vertex subsets: O(2ⁿ·n²) time,
// O(2ⁿ·n) space. This is the algorithm behind Corollary 1 of the paper: via
// the reduction, L(p)-LABELING on diameter-≤k graphs is solved exactly in
// O(2ⁿ·n²).
//
// The DP is parallelized per subset-cardinality layer: all masks with the
// same popcount depend only on the previous layer, so each layer is split
// across GOMAXPROCS workers with no locking (each worker writes disjoint
// dp rows).

// HeldKarpMaxN bounds the instance size accepted by the exact DP; above it
// the dp table (2ⁿ·n int32 + 2ⁿ·n int8) would exceed a few GiB.
const HeldKarpMaxN = 24

// HeldKarpPath solves METRIC PATH TSP with free endpoints exactly.
// It returns an optimal Hamiltonian path and its cost.
func HeldKarpPath(ins *Instance) (Tour, int64, error) {
	return heldKarp(context.Background(), ins, -1, -1, false)
}

// HeldKarpPathContext is HeldKarpPath with cooperative cancellation: the DP
// checks ctx between subset-cardinality layers and returns ctx.Err() when
// cancelled (the DP has no meaningful incumbent before completion).
func HeldKarpPathContext(ctx context.Context, ins *Instance) (Tour, int64, error) {
	return heldKarp(ctx, ins, -1, -1, false)
}

// HeldKarpPathBetween solves PATH TSP with fixed endpoints s and t.
func HeldKarpPathBetween(ins *Instance, s, t int) (Tour, int64, error) {
	if s == t {
		return nil, 0, fmt.Errorf("tsp: path endpoints must differ")
	}
	return heldKarp(context.Background(), ins, s, t, false)
}

// HeldKarpCycle solves TSP (Hamiltonian cycle) exactly.
func HeldKarpCycle(ins *Instance) (Tour, int64, error) {
	return heldKarp(context.Background(), ins, -1, -1, true)
}

func heldKarp(ctx context.Context, ins *Instance, s, t int, cycle bool) (Tour, int64, error) {
	n := ins.n
	if n > HeldKarpMaxN {
		return nil, 0, fmt.Errorf("tsp: Held–Karp limited to n <= %d, got %d", HeldKarpMaxN, n)
	}
	switch n {
	case 0:
		return Tour{}, 0, nil
	case 1:
		return Tour{0}, 0, nil
	case 2:
		if cycle {
			return Tour{0, 1}, 2 * ins.Weight(0, 1), nil
		}
		if s >= 0 {
			return Tour{s, t}, ins.Weight(s, t), nil
		}
		return Tour{0, 1}, ins.Weight(0, 1), nil
	}
	if cycle {
		s = 0 // fix rotation
	}

	if canceled(ctx) {
		return nil, 0, ctx.Err()
	}
	size := 1 << uint(n)
	sc := getHKScratch(size, n)
	defer putHKScratch(sc)
	dp, par := sc.dp, sc.par
	const inf32 = int32(math.MaxInt32 / 2)
	// The table is ~2 GiB at n = HeldKarpMaxN; faulting it in during this
	// fill can take longer than whole layers, so the fill gets its own
	// cancellation checkpoints.
	for lo := 0; lo < len(dp); lo += 1 << 22 {
		if canceled(ctx) {
			return nil, 0, ctx.Err()
		}
		hi := lo + 1<<22
		if hi > len(dp) {
			hi = len(dp)
		}
		for i := lo; i < hi; i++ {
			dp[i] = inf32
		}
	}
	// Seed singletons.
	if s >= 0 {
		dp[(1<<uint(s))*n+s] = 0
	} else {
		for v := 0; v < n; v++ {
			dp[(1<<uint(v))*n+v] = 0
		}
	}

	// Precompute weight rows as int32 (all reduced-instance weights are
	// tiny; general instances must fit int32 or we fall back with an error).
	// Compact instances translate their distance rows through the class
	// lut — checked once per class, not once per entry.
	w32 := sc.w32
	if ins.Compact() {
		// One overflow check per class (the lut is tiny), then a straight
		// translation of the distance rows. No assumption on how large
		// the distance values themselves are.
		for _, w := range ins.lut {
			if w > math.MaxInt32/4 {
				return nil, 0, fmt.Errorf("tsp: weight %d too large for Held–Karp int32 DP", w)
			}
		}
		lut := ins.lut
		for i := 0; i < n; i++ {
			drow := ins.distRow(i)
			row := w32[i*n : (i+1)*n]
			for j, d := range drow {
				row[j] = int32(lut[d])
			}
		}
	} else {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w := ins.Weight(i, j)
				if w > math.MaxInt32/4 {
					return nil, 0, fmt.Errorf("tsp: weight %d too large for Held–Karp int32 DP", w)
				}
				w32[i*n+j] = int32(w)
			}
		}
	}

	// Layer-by-layer processing (masks grouped by popcount), parallel
	// within a layer.
	masks := sc.masks[:0]
	workers := runtime.GOMAXPROCS(0)
	for sz := 2; sz <= n; sz++ {
		if canceled(ctx) {
			return nil, 0, ctx.Err()
		}
		masks = masks[:0]
		// Gosper's hack enumerates all n-bit masks with popcount sz.
		m := (1 << uint(sz)) - 1
		for m < size {
			masks = append(masks, m)
			c := m & -m
			r := m + c
			m = (((r ^ m) >> 2) / c) | r
		}
		sc.masks = masks // keep the grown buffer pooled
		if !processLayer(ctx, masks, dp, par, w32, n, workers) {
			// A chunk bailed out mid-layer, so this layer's dp rows are
			// unusable. (A cancellation that lands after the final layer
			// completed does NOT discard the finished DP — the optimum is
			// already computed and reconstruction is cheap.)
			return nil, 0, ctx.Err()
		}
	}

	full := size - 1
	// Extract optimum.
	best := inf32
	bestEnd := -1
	for v := 0; v < n; v++ {
		c := dp[full*n+v]
		if c >= inf32 {
			continue
		}
		if cycle {
			c += w32[v*n+0]
		}
		if t >= 0 && v != t {
			continue
		}
		if c < best {
			best = c
			bestEnd = v
		}
	}
	if bestEnd < 0 {
		return nil, 0, fmt.Errorf("tsp: no feasible tour (unexpected for complete instance)")
	}
	// Reconstruct.
	tour := make(Tour, n)
	mask := full
	v := bestEnd
	for i := n - 1; i >= 0; i-- {
		tour[i] = v
		p := int(par[mask*n+v])
		mask &^= 1 << uint(v)
		v = p
	}
	return tour, int64(best), nil
}

// processLayer relaxes every mask in the layer: dp[mask][v] =
// min over u in mask\{v} of dp[mask^v][u] + w(u,v). Large layers are split
// into bounded slices so a cancelled context is noticed mid-layer (the
// middle layers near n = HeldKarpMaxN hold millions of masks — far too
// much work to run uninterruptibly between layer-boundary checks).
// processLayer reports whether the layer was fully relaxed (false means a
// chunk noticed cancellation and bailed early).
func processLayer(ctx context.Context, masks []int, dp []int32, par []int8, w32 []int32, n, workers int) bool {
	if len(masks) < 64 || workers <= 1 {
		return layerChunk(ctx, masks, dp, par, w32, n)
	}
	var wg sync.WaitGroup
	chunk := (len(masks) + workers - 1) / workers
	nchunks := (len(masks) + chunk - 1) / chunk
	oks := make([]bool, nchunks)
	for c := 0; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(masks) {
			hi = len(masks)
		}
		wg.Add(1)
		go func(ms []int, ok *bool) {
			defer wg.Done()
			*ok = layerChunk(ctx, ms, dp, par, w32, n)
		}(masks[lo:hi], &oks[c])
	}
	wg.Wait()
	for _, ok := range oks {
		if !ok {
			return false
		}
	}
	return true
}

// layerChunkCtxStride is how many masks each worker relaxes between
// cancellation checks (a mask costs O(n²), so this is ~1M ops).
const layerChunkCtxStride = 4096

// layerChunk reports whether it relaxed every mask (false = cancelled).
func layerChunk(ctx context.Context, masks []int, dp []int32, par []int8, w32 []int32, n int) bool {
	const inf32 = int32(math.MaxInt32 / 2)
	for mi, mask := range masks {
		if mi&(layerChunkCtxStride-1) == 0 && canceled(ctx) {
			return false
		}
		base := mask * n
		rest := mask
		for rest != 0 {
			v := trailingZeros(rest)
			rest &= rest - 1
			prev := mask &^ (1 << uint(v))
			pbase := prev * n
			wrow := w32[v*n:]
			best := inf32
			bestU := int8(-1)
			scan := prev
			for scan != 0 {
				u := trailingZeros(scan)
				scan &= scan - 1
				if c := dp[pbase+u]; c < inf32 {
					if c += wrow[u]; c < best {
						best = c
						bestU = int8(u)
					}
				}
			}
			if bestU >= 0 {
				dp[base+v] = best
				par[base+v] = bestU
			}
		}
	}
	return true
}

func trailingZeros(x int) int { return bits.TrailingZeros32(uint32(x)) }
