package tsp

import (
	"testing"

	"lpltsp/internal/rng"
)

func TestThreeOptNeverWorsens(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(25)
		ins := randomInstance(r, n, 60)
		tour := Tour(r.Perm(n))
		before := ins.PathCost(tour)
		delta := ThreeOptPath(ins, tour)
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		after := ins.PathCost(tour)
		if after != before+delta {
			t.Fatalf("delta accounting: before=%d delta=%d after=%d", before, delta, after)
		}
		if after > before {
			t.Fatalf("3-opt worsened: %d -> %d", before, after)
		}
	}
}

func TestThreeOptImprovesSomeTwoOptLocalOptima(t *testing.T) {
	// Statistically, 3-opt must strictly improve at least one 2-opt local
	// optimum across many random instances; otherwise the move set adds
	// nothing and the ablation table would be vacuous.
	r := rng.New(32)
	improved := 0
	for trial := 0; trial < 60; trial++ {
		n := 10 + r.Intn(10)
		ins := randomInstance(r, n, 50)
		tour := Tour(r.Perm(n))
		TwoOptPath(ins, tour)
		if ThreeOptPath(ins, tour) < 0 {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("3-opt never improved a 2-opt local optimum in 60 trials")
	}
}

func TestThreeOptTinyTours(t *testing.T) {
	r := rng.New(33)
	for n := 0; n < 5; n++ {
		ins := randomInstance(r, n, 10)
		tour := Tour(r.Perm(n))
		if d := ThreeOptPath(ins, tour); d != 0 {
			t.Fatalf("n=%d: expected no-op, got %d", n, d)
		}
	}
}

func TestChristofidesGreedyMatchingValid(t *testing.T) {
	r := rng.New(34)
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(20)
		ins := randomMetricInstance(r, n, 1+r.Intn(3))
		tour, cost, err := ChristofidesPathGreedyMatching(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if cost != ins.PathCost(tour) {
			t.Fatal("cost mismatch")
		}
		// On [lo,2lo] metrics any Hamiltonian path is ≤ 2×opt.
		if n <= 12 {
			_, opt, _ := HeldKarpPath(ins)
			if float64(cost) > 2*float64(opt)+1e-9 {
				t.Fatalf("greedy-matching variant exceeded 2×opt: %d vs %d", cost, opt)
			}
		}
	}
}
