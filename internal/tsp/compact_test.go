package tsp

import (
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

// classInstancePair builds a compact weight-class instance from a random
// small-diameter graph's distance matrix together with its densified twin.
// classWeights deliberately contains duplicates so weight classes collapse.
func classInstancePair(r *rng.RNG, n, k int) (*Instance, *Instance) {
	g := graph.RandomSmallDiameter(r, n, k, 0.3)
	dm := g.AllPairsDistances()
	if _, disc := dm.Max(); disc {
		// RandomSmallDiameter guarantees connectivity; belt and braces.
		panic("disconnected test graph")
	}
	classWeights := make([]int64, k)
	pmin := int64(1 + r.Intn(3))
	for i := range classWeights {
		classWeights[i] = pmin + int64(r.Intn(2)) // duplicates likely
	}
	compact := NewClassInstance(n, dm.Data(), classWeights)
	return compact, compact.Densify()
}

func TestClassInstanceAgreesWithDense(t *testing.T) {
	r := rng.New(301)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(30)
		k := 2 + r.Intn(3)
		compact, dense := classInstancePair(r, n, k)
		if !compact.Compact() || dense.Compact() {
			t.Fatal("backing flags wrong")
		}
		if compact.Classes() == 0 || compact.Classes() > k {
			t.Fatalf("Classes() = %d with k = %d", compact.Classes(), k)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if compact.Weight(i, j) != dense.Weight(i, j) {
					t.Fatalf("Weight(%d,%d): compact %d dense %d", i, j, compact.Weight(i, j), dense.Weight(i, j))
				}
			}
		}
		cmin, cmax := compact.MinMaxWeight()
		dmin, dmax := dense.MinMaxWeight()
		if cmin != dmin || cmax != dmax {
			t.Fatalf("MinMaxWeight: compact (%d,%d) dense (%d,%d)", cmin, cmax, dmin, dmax)
		}
		for rep := 0; rep < 5; rep++ {
			tour := Tour(r.Perm(n))
			if compact.PathCost(tour) != dense.PathCost(tour) {
				t.Fatalf("PathCost differs on %v", tour)
			}
			if compact.CycleCost(tour) != dense.CycleCost(tour) {
				t.Fatalf("CycleCost differs on %v", tour)
			}
		}
	}
}

func TestClassInstanceImmutable(t *testing.T) {
	r := rng.New(302)
	compact, _ := classInstancePair(r, 6, 2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on compact instance did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetWeight", func() { compact.SetWeight(0, 1, 9) })
	mustPanic("Row", func() { compact.Row(0) })
}

func TestNewClassInstanceRejectsBadMatrices(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short matrix", func() { NewClassInstance(3, make([]uint16, 8), []int64{1, 2}) })
	mustPanic("nonzero diagonal", func() {
		NewClassInstance(2, []uint16{1, 1, 1, 0}, []int64{1})
	})
	mustPanic("distance beyond classes", func() {
		NewClassInstance(2, []uint16{0, 3, 3, 0}, []int64{1, 2})
	})
	mustPanic("zero off-diagonal", func() {
		NewClassInstance(2, []uint16{0, 0, 0, 0}, []int64{1})
	})
}

// TestClassInstanceDistanceGaps covers hand-built matrices whose distance
// values have gaps (valid per NewClassInstance's contract, impossible for
// BFS-continuous reduction matrices): the class structure must reflect
// only weights that occur between some pair.
func TestClassInstanceDistanceGaps(t *testing.T) {
	// Distance 2 occurs, distance 1 never does; its weight 5 must not
	// surface anywhere.
	ins := NewClassInstance(2, []uint16{0, 2, 2, 0}, []int64{5, 1})
	if got := ins.Classes(); got != 1 {
		t.Fatalf("Classes() = %d, want 1 (distance 1 never occurs)", got)
	}
	min, max := ins.MinMaxWeight()
	if min != 1 || max != 1 {
		t.Fatalf("MinMaxWeight = (%d,%d), want (1,1)", min, max)
	}
	if w := ins.Weight(0, 1); w != 1 {
		t.Fatalf("Weight(0,1) = %d, want 1", w)
	}
}

// TestHeldKarpLargeDistanceValues covers compact instances whose distance
// values exceed HeldKarpMaxN (valid when enough classWeights are given):
// the DP must translate them through the lut, not assume diam < n.
func TestHeldKarpLargeDistanceValues(t *testing.T) {
	const big = 30 // > HeldKarpMaxN
	cw := make([]int64, big)
	for i := range cw {
		cw[i] = int64(i%2 + 1)
	}
	n := 4
	dist := make([]uint16, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				dist[i*n+j] = big
			}
		}
	}
	ins := NewClassInstance(n, dist, cw)
	tour, cost, err := HeldKarpPath(ins)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.ValidateTour(tour); err != nil {
		t.Fatal(err)
	}
	if want := int64(n-1) * cw[big-1]; cost != want {
		t.Fatalf("cost = %d, want %d", cost, want)
	}
}

// TestNearestNeighborsCompactMatchesDense asserts the bucket-based compact
// neighbor lists are exactly the dense (weight, index)-sorted lists.
func TestNearestNeighborsCompactMatchesDense(t *testing.T) {
	r := rng.New(303)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(40)
		k := 2 + r.Intn(4)
		compact, dense := classInstancePair(r, n, k)
		for _, kk := range []int{1, 3, 8, n - 1} {
			nc := nearestNeighbors(compact, kk)
			nd := nearestNeighbors(dense, kk)
			for v := range nc {
				if len(nc[v]) != len(nd[v]) {
					t.Fatalf("k=%d vertex %d: lengths %d vs %d", kk, v, len(nc[v]), len(nd[v]))
				}
				for i := range nc[v] {
					if nc[v][i] != nd[v][i] {
						t.Fatalf("k=%d vertex %d: compact %v dense %v", kk, v, nc[v], nd[v])
					}
				}
			}
		}
	}
}

// TestNearestNeighborsZeroK pins the k ≤ 0 edge case: empty lists, no
// panic, on both representations.
func TestNearestNeighborsZeroK(t *testing.T) {
	r := rng.New(306)
	compact, dense := classInstancePair(r, 6, 2)
	for _, ins := range []*Instance{compact, dense} {
		for _, k := range []int{0, -3} {
			nb := nearestNeighbors(ins, k)
			for v, list := range nb {
				if len(list) != 0 {
					t.Fatalf("k=%d vertex %d: got %d neighbors, want 0", k, v, len(list))
				}
			}
		}
	}
}

// TestGreedyEdgeCompactMatchesDense asserts the counting-sorted compact
// edge sweep visits edges in the same canonical (weight, u, v) order as
// the dense comparison sort, and therefore builds the identical path.
func TestGreedyEdgeCompactMatchesDense(t *testing.T) {
	r := rng.New(304)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(40)
		k := 2 + r.Intn(4)
		compact, dense := classInstancePair(r, n, k)
		tc := GreedyEdgePath(compact)
		td := GreedyEdgePath(dense)
		if err := compact.ValidateTour(tc); err != nil {
			t.Fatal(err)
		}
		for i := range tc {
			if tc[i] != td[i] {
				t.Fatalf("tours differ: compact %v dense %v", tc, td)
			}
		}
	}
}

// TestEnginesCompactMatchesDense runs the deterministic engine family on
// both representations and demands identical tours.
func TestEnginesCompactMatchesDense(t *testing.T) {
	r := rng.New(305)
	deterministic := []Algorithm{AlgoGreedyEdge, AlgoTwoOpt, AlgoThreeOpt, AlgoChristofides, AlgoHeldKarp}
	for trial := 0; trial < 8; trial++ {
		n := 5 + r.Intn(10)
		compact, dense := classInstancePair(r, n, 2+r.Intn(2))
		for _, algo := range deterministic {
			tc, cc, err := Solve(compact, algo, nil)
			if err != nil {
				t.Fatalf("%s compact: %v", algo, err)
			}
			td, cd, err := Solve(dense, algo, nil)
			if err != nil {
				t.Fatalf("%s dense: %v", algo, err)
			}
			if cc != cd {
				t.Fatalf("%s: compact cost %d dense cost %d", algo, cc, cd)
			}
			for i := range tc {
				if tc[i] != td[i] {
					t.Fatalf("%s: tours differ: %v vs %v", algo, tc, td)
				}
			}
		}
	}
}
