package tsp

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"lpltsp/internal/dsu"
)

// NearestNeighborFrom builds a Hamiltonian path greedily from start.
func NearestNeighborFrom(ins *Instance, start int) Tour {
	n := ins.n
	tour := make(Tour, 0, n)
	visited := make([]bool, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < n {
		row := ins.Row(cur)
		best, bestW := -1, int64(0)
		for v := 0; v < n; v++ {
			if !visited[v] && (best == -1 || row[v] < bestW) {
				best, bestW = v, row[v]
			}
		}
		visited[best] = true
		tour = append(tour, best)
		cur = best
	}
	return tour
}

// NearestNeighborBest runs NearestNeighborFrom from every start vertex in
// parallel and returns the cheapest resulting path.
func NearestNeighborBest(ins *Instance) (Tour, int64) {
	t, c, _ := nearestNeighborBest(context.Background(), ins)
	return t, c
}

// nearestNeighborBest is NearestNeighborBest with a cancellation
// checkpoint between start vertices; at least one start is always
// completed, so a valid tour comes back even under an expired context. It
// additionally reports how many starts completed.
func nearestNeighborBest(ctx context.Context, ins *Instance) (Tour, int64, int64) {
	n := ins.n
	if n == 0 {
		return Tour{}, 0, 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	type result struct {
		tour Tour
		cost int64
	}
	results := make(chan result, workers)
	var next int64
	var mu sync.Mutex
	grab := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		s := int(next)
		next++
		return s
	}
	var wg sync.WaitGroup
	var started int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var best Tour
			bestC := int64(-1)
			var done int64
			for {
				s := grab()
				if s < 0 {
					break
				}
				t := NearestNeighborFrom(ins, s)
				c := ins.PathCost(t)
				done++
				if bestC < 0 || c < bestC {
					best, bestC = t, c
				}
				if canceled(ctx) {
					break
				}
			}
			if bestC >= 0 {
				results <- result{best, bestC}
			}
			mu.Lock()
			started += done
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(results)
	var best Tour
	bestC := int64(-1)
	for r := range results {
		if bestC < 0 || r.cost < bestC {
			best, bestC = r.tour, r.cost
		}
	}
	// Every worker completes its first grabbed start before checking ctx,
	// so at least one result always arrives and best is never nil here.
	return best, bestC, started
}

// GreedyEdgePath builds a Hamiltonian path by repeatedly taking the
// globally cheapest edge whose addition keeps the partial solution a
// disjoint union of simple paths (degree ≤ 2, no cycle). The n-1 accepted
// edges form a single Hamiltonian path.
func GreedyEdgePath(ins *Instance) Tour {
	n := ins.n
	if n <= 1 {
		return identity(n)
	}
	type edge struct {
		w    int64
		u, v int32
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		row := ins.Row(i)
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{row[j], int32(i), int32(j)})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].w < edges[b].w })
	deg := make([]int8, n)
	d := dsu.New(n)
	adj := make([][2]int32, n)
	for i := range adj {
		adj[i] = [2]int32{-1, -1}
	}
	taken := 0
	for _, e := range edges {
		if taken == n-1 {
			break
		}
		u, v := int(e.u), int(e.v)
		if deg[u] >= 2 || deg[v] >= 2 || d.Same(u, v) {
			continue
		}
		d.Union(u, v)
		adj[u][deg[u]] = int32(v)
		adj[v][deg[v]] = int32(u)
		deg[u]++
		deg[v]++
		taken++
	}
	// Walk the single path from one endpoint.
	start := 0
	for v := 0; v < n; v++ {
		if deg[v] <= 1 {
			start = v
			break
		}
	}
	tour := make(Tour, 0, n)
	prev := int32(-1)
	cur := int32(start)
	for len(tour) < n {
		tour = append(tour, int(cur))
		next := adj[cur][0]
		if next == prev || next == -1 {
			next = adj[cur][1]
		}
		prev, cur = cur, next
		if cur == -1 {
			break
		}
	}
	return tour
}
