package tsp

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// NearestNeighborFrom builds a Hamiltonian path greedily from start.
func NearestNeighborFrom(ins *Instance, start int) Tour {
	tour := make(Tour, ins.n)
	sc := getVisited(ins.n)
	nearestNeighborInto(ins, start, tour, sc.visited)
	putVisited(sc)
	return tour
}

// nearestNeighborInto writes the greedy path from start into tour (length
// n). visited must be all-false on entry and is left dirty — callers that
// loop over starts clear it between runs instead of reallocating.
func nearestNeighborInto(ins *Instance, start int, tour Tour, visited []bool) {
	n := ins.n
	if n == 0 {
		return
	}
	cur := start
	visited[cur] = true
	tour[0] = cur
	compact := ins.Compact()
	for idx := 1; idx < n; idx++ {
		best, bestW := -1, int64(0)
		if compact {
			drow, lut := ins.distRow(cur), ins.lut
			for v, d := range drow {
				if !visited[v] {
					if w := lut[d]; best == -1 || w < bestW {
						best, bestW = v, w
					}
				}
			}
		} else {
			row := ins.Row(cur)
			for v, w := range row {
				if !visited[v] && (best == -1 || w < bestW) {
					best, bestW = v, w
				}
			}
		}
		visited[best] = true
		tour[idx] = best
		cur = best
	}
}

// NearestNeighborBest runs NearestNeighborFrom from every start vertex in
// parallel and returns the cheapest resulting path.
func NearestNeighborBest(ins *Instance) (Tour, int64) {
	t, c, _ := nearestNeighborBest(context.Background(), ins)
	return t, c
}

// nearestNeighborBest is NearestNeighborBest with a cancellation
// checkpoint between start vertices; at least one start is always
// completed, so a valid tour comes back even under an expired context. It
// additionally reports how many starts completed. Start vertices are
// claimed with one atomic add per start (no mutex), and each worker reuses
// a single tour/visited buffer pair across all its starts.
func nearestNeighborBest(ctx context.Context, ins *Instance) (Tour, int64, int64) {
	n := ins.n
	if n == 0 {
		return Tour{}, 0, 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	type result struct {
		tour Tour
		cost int64
	}
	results := make(chan result, workers)
	var next, started atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getVisited(n)
			defer putVisited(sc)
			cur := make(Tour, n)
			var best Tour
			bestC := int64(-1)
			var done int64
			for {
				s := int(next.Add(1) - 1)
				if s >= n {
					break
				}
				for i := range sc.visited {
					sc.visited[i] = false
				}
				nearestNeighborInto(ins, s, cur, sc.visited)
				c := ins.PathCost(cur)
				done++
				if bestC < 0 || c < bestC {
					if best == nil {
						best = make(Tour, n)
					}
					copy(best, cur)
					bestC = c
				}
				if canceled(ctx) {
					break
				}
			}
			if bestC >= 0 {
				results <- result{best, bestC}
			}
			started.Add(done)
		}()
	}
	wg.Wait()
	close(results)
	var best Tour
	bestC := int64(-1)
	for r := range results {
		if bestC < 0 || r.cost < bestC {
			best, bestC = r.tour, r.cost
		}
	}
	// Every worker completes its first grabbed start before checking ctx,
	// so at least one result always arrives and best is never nil here.
	return best, bestC, started.Load()
}

// GreedyEdgePath builds a Hamiltonian path by repeatedly taking the
// globally cheapest edge whose addition keeps the partial solution a
// disjoint union of simple paths (degree ≤ 2, no cycle). The n-1 accepted
// edges form a single Hamiltonian path.
//
// Edges are considered in (weight, u, v) order. Compact instances reach
// that order by a counting sort over the ≤k weight classes — O(n²) total,
// no comparison sort; dense instances sort explicitly. All sweep state
// (edge list, degrees, adjacency, union-find) is pooled.
func GreedyEdgePath(ins *Instance) Tour {
	n := ins.n
	if n <= 1 {
		return identity(n)
	}
	sc := getGreedyScratch(n, ins.Classes())
	defer putGreedyScratch(sc)
	edges := sc.edges
	if ins.Compact() {
		// Counting sort by weight-class rank. Scanning (i,j) in lex order
		// makes each class bucket lex-sorted, and ranks ascend by weight,
		// so the filled edge list is exactly in (weight, u, v) order.
		classOf, cnt := ins.classOf, sc.cnt
		for i := 0; i < n; i++ {
			drow := ins.distRow(i)
			for j := i + 1; j < n; j++ {
				cnt[classOf[drow[j]]+1]++
			}
		}
		for c := 2; c < len(cnt); c++ {
			cnt[c] += cnt[c-1]
		}
		lut := ins.lut
		for i := 0; i < n; i++ {
			drow := ins.distRow(i)
			for j := i + 1; j < n; j++ {
				c := classOf[drow[j]]
				edges[cnt[c]] = greedyEdge{lut[drow[j]], packUV(i, j)}
				cnt[c]++
			}
		}
	} else {
		e := 0
		for i := 0; i < n; i++ {
			row := ins.Row(i)
			for j := i + 1; j < n; j++ {
				edges[e] = greedyEdge{row[j], packUV(i, j)}
				e++
			}
		}
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].w != edges[b].w {
				return edges[a].w < edges[b].w
			}
			return edges[a].uv < edges[b].uv
		})
	}
	deg, adj, d := sc.deg, sc.adj, &sc.d
	taken := 0
	for _, e := range edges {
		if taken == n-1 {
			break
		}
		u, v := e.split()
		if deg[u] >= 2 || deg[v] >= 2 || d.Same(u, v) {
			continue
		}
		d.Union(u, v)
		adj[u][deg[u]] = int32(v)
		adj[v][deg[v]] = int32(u)
		deg[u]++
		deg[v]++
		taken++
	}
	// Walk the single path from one endpoint.
	start := 0
	for v := 0; v < n; v++ {
		if deg[v] <= 1 {
			start = v
			break
		}
	}
	tour := make(Tour, 0, n)
	prev := int32(-1)
	cur := int32(start)
	for len(tour) < n {
		tour = append(tour, int(cur))
		next := adj[cur][0]
		if next == prev || next == -1 {
			next = adj[cur][1]
		}
		prev, cur = cur, next
		if cur == -1 {
			break
		}
	}
	return tour
}
