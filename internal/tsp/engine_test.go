package tsp

import (
	"context"
	"errors"
	"testing"
	"time"

	"lpltsp/internal/rng"
)

// engineTestInstance builds an instance with weights in {lo..hi} where
// hi ≤ 2·lo, which guarantees the triangle inequality (same argument as
// the labeling reduction's weight band).
func engineTestInstance(seed uint64, n int) *Instance {
	r := rng.New(seed)
	ins := NewInstance(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ins.SetWeight(i, j, int64(1+r.Intn(2))) // weights in {1,2}
		}
	}
	return ins
}

func TestRegistryResolvesAllEngines(t *testing.T) {
	ins := engineTestInstance(3, 12)
	_, opt, err := HeldKarpPath(ins)
	if err != nil {
		t.Fatal(err)
	}
	algos := Algorithms()
	if len(algos) < 8 {
		t.Fatalf("registry has %d engines, want at least the paper's eight: %v", len(algos), algos)
	}
	for _, algo := range algos {
		eng, err := New(algo, nil)
		if err != nil {
			t.Fatalf("New(%s): %v", algo, err)
		}
		if eng.Name() != algo {
			t.Fatalf("engine registered as %q names itself %q", algo, eng.Name())
		}
		tour, stats, err := eng.Solve(context.Background(), ins, ObjectivePath)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := ins.PathCost(tour); got != stats.Cost {
			t.Fatalf("%s: Stats.Cost %d != PathCost %d", algo, stats.Cost, got)
		}
		if stats.Cost < opt {
			t.Fatalf("%s: cost %d below optimum %d", algo, stats.Cost, opt)
		}
		if stats.Optimal && stats.Cost != opt {
			t.Fatalf("%s claims optimality at cost %d, optimum is %d", algo, stats.Cost, opt)
		}
	}
}

func TestLookupUnknownAlgorithm(t *testing.T) {
	if _, err := Lookup(Algorithm("bogus")); err == nil {
		t.Fatal("Lookup(bogus) must error")
	}
	if _, _, err := Solve(engineTestInstance(1, 6), Algorithm("bogus"), nil); err == nil {
		t.Fatal("Solve with unknown algorithm must error")
	}
}

func TestSolveMatchesEngineDispatch(t *testing.T) {
	ins := engineTestInstance(9, 14)
	for _, algo := range []Algorithm{AlgoExact, AlgoChristofides, AlgoGreedyEdge} {
		tour, cost, err := Solve(ins, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if cost != ins.PathCost(tour) {
			t.Fatalf("%s: reported cost %d != recomputed %d", algo, cost, ins.PathCost(tour))
		}
	}
}

// TestEnginesReturnPromptlyAfterCancel is the cancellation-semantics
// contract, table-driven over the registry: with an already-cancelled
// context every engine must return within a small bound, either with a
// context error (no incumbent) or with a valid anytime tour.
func TestEnginesReturnPromptlyAfterCancel(t *testing.T) {
	ins := engineTestInstance(5, 20) // within every engine's size limit
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range Algorithms() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			start := time.Now()
			tour, stats, err := SolveContext(ctx, ins, algo, nil)
			elapsed := time.Since(start)
			if elapsed > 3*time.Second {
				t.Fatalf("engine took %v to notice a cancelled context", elapsed)
			}
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("non-context error after cancel: %v", err)
				}
				return
			}
			// Anytime path: the tour must still be valid and priced.
			if verr := ins.ValidateTour(tour); verr != nil {
				t.Fatalf("anytime tour invalid: %v", verr)
			}
			if stats.Cost != ins.PathCost(tour) {
				t.Fatalf("anytime Stats.Cost %d != PathCost %d", stats.Cost, ins.PathCost(tour))
			}
			if stats.Optimal && !stats.Truncated {
				// A cancelled run may legitimately complete (tiny work),
				// but then it must have actually proven optimality.
				_, opt, _ := HeldKarpPath(ins)
				if stats.Cost != opt {
					t.Fatalf("claimed optimal cost %d, optimum %d", stats.Cost, opt)
				}
			}
		})
	}
}

// TestBnBAnytimeDeadline forces branch and bound past its deadline and
// checks it surrenders a valid incumbent instead of erroring.
func TestBnBAnytimeDeadline(t *testing.T) {
	ins := engineTestInstance(11, 34)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	tour, stats, err := BranchAndBoundPathContext(ctx, ins)
	if err != nil {
		t.Fatalf("anytime BnB errored: %v", err)
	}
	if err := ins.ValidateTour(tour); err != nil {
		t.Fatal(err)
	}
	if stats.Optimal && stats.Truncated {
		t.Fatal("a truncated run must not claim optimality")
	}
	if stats.Cost != ins.PathCost(tour) {
		t.Fatalf("Stats.Cost %d != PathCost %d", stats.Cost, ins.PathCost(tour))
	}
}

// TestBnBCompletesOptimal pins the completed-search case: Stats.Optimal is
// set and matches Held–Karp.
func TestBnBCompletesOptimal(t *testing.T) {
	ins := engineTestInstance(13, 12)
	tour, stats, err := BranchAndBoundPathContext(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Optimal || stats.Truncated {
		t.Fatalf("uninterrupted BnB must prove optimality: %+v", stats)
	}
	_, opt, _ := HeldKarpPath(ins)
	if stats.Cost != opt || ins.PathCost(tour) != opt {
		t.Fatalf("BnB cost %d, optimum %d", stats.Cost, opt)
	}
}

// TestChainedAnytimeUnderDeadline checks the chained engine yields a valid
// tour even when the deadline expires immediately.
func TestChainedAnytimeUnderDeadline(t *testing.T) {
	ins := engineTestInstance(17, 120)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tour, cost := ChainedLocalSearchContext(ctx, ins, &ChainedOptions{Restarts: 4, Kicks: 50, Seed: 2})
	if err := ins.ValidateTour(tour); err != nil {
		t.Fatal(err)
	}
	if cost != ins.PathCost(tour) {
		t.Fatalf("cost %d != recomputed %d", cost, ins.PathCost(tour))
	}
}

func TestHeldKarpCancelReturnsContextError(t *testing.T) {
	ins := engineTestInstance(19, 18)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := HeldKarpPathContext(ctx, ins); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestUnsupportedObjective(t *testing.T) {
	ins := engineTestInstance(23, 8)
	for _, algo := range []Algorithm{AlgoChained, AlgoTwoOpt, AlgoNearestNeighbor, AlgoGreedyEdge, AlgoBnB} {
		eng, err := New(algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.Solve(context.Background(), ins, ObjectiveCycle); !errors.Is(err, ErrUnsupportedObjective) {
			t.Fatalf("%s cycle: want ErrUnsupportedObjective, got %v", algo, err)
		}
	}
	// Held–Karp and Christofides do support cycles.
	for _, algo := range []Algorithm{AlgoHeldKarp, AlgoChristofides} {
		eng, err := New(algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		tour, _, err := eng.Solve(context.Background(), ins, ObjectiveCycle)
		if err != nil {
			t.Fatalf("%s cycle: %v", algo, err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatalf("%s cycle: %v", algo, err)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register(AlgoExact, func(*SolveOptions) Engine { return exactEngine{} })
}
