package tsp

import (
	"context"
	"fmt"

	"lpltsp/internal/euler"
	"lpltsp/internal/matching"
	"lpltsp/internal/mst"
)

// ChristofidesCycle computes a Hamiltonian cycle by the classical
// Christofides pipeline: MST → minimum-weight perfect matching on the
// odd-degree vertices → Eulerian circuit → shortcut. On metric instances
// the result is at most 1.5× the optimal cycle.
func ChristofidesCycle(ins *Instance) (Tour, int64, error) {
	return christofidesCycle(context.Background(), ins)
}

func christofidesCycle(ctx context.Context, ins *Instance) (Tour, int64, error) {
	n := ins.n
	if n <= 2 {
		return identity(n), ins.CycleCost(identity(n)), nil
	}
	if canceled(ctx) {
		return nil, 0, ctx.Err()
	}
	parent, _ := mst.PrimDense(n, func(i, j int) int64 { return ins.Weight(i, j) })
	deg := make([]int, n)
	mg := euler.NewMultigraph(n)
	for v := 1; v < n; v++ {
		mg.AddEdge(v, parent[v])
		deg[v]++
		deg[parent[v]]++
	}
	var odd []int
	for v := 0; v < n; v++ {
		if deg[v]%2 == 1 {
			odd = append(odd, v)
		}
	}
	if len(odd) > 0 {
		if canceled(ctx) {
			return nil, 0, ctx.Err()
		}
		mate, _, err := matching.MinWeightPerfect(len(odd), func(i, j int) int64 {
			return ins.Weight(odd[i], odd[j])
		})
		if err != nil {
			return nil, 0, fmt.Errorf("tsp: christofides matching: %w", err)
		}
		for i, j := range mate {
			if i < j {
				mg.AddEdge(odd[i], odd[j])
			}
		}
	}
	walk, err := mg.Circuit(0)
	if err != nil {
		return nil, 0, fmt.Errorf("tsp: christofides euler: %w", err)
	}
	tour := shortcut(walk, n)
	return tour, ins.CycleCost(tour), nil
}

// ChristofidesPath computes a Hamiltonian path with free endpoints by the
// Hoogeveen variant of Christofides: build an MST T, then find a
// minimum-weight matching on the odd-degree vertices of T that leaves
// exactly two of them unmatched (via two zero-cost dummy vertices); T plus
// the matching has exactly two odd vertices, so an Eulerian trail exists
// and is shortcut to a Hamiltonian path. On metric instances this is the
// 1.5-approximation for PATH TSP with free ends that Corollary 1 needs.
func ChristofidesPath(ins *Instance) (Tour, int64, error) {
	return christofidesPath(context.Background(), ins)
}

// christofidesPath is ChristofidesPath with cancellation checkpoints
// between pipeline stages (MST, matching, Eulerian trail). The pipeline
// has no meaningful incumbent before the final shortcut, so a cancelled
// context yields ctx.Err().
func christofidesPath(ctx context.Context, ins *Instance) (Tour, int64, error) {
	n := ins.n
	if n <= 2 {
		return identity(n), ins.PathCost(identity(n)), nil
	}
	if canceled(ctx) {
		return nil, 0, ctx.Err()
	}
	parent, _ := mst.PrimDense(n, func(i, j int) int64 { return ins.Weight(i, j) })
	deg := make([]int, n)
	mg := euler.NewMultigraph(n)
	for v := 1; v < n; v++ {
		mg.AddEdge(v, parent[v])
		deg[v]++
		deg[parent[v]]++
	}
	var odd []int
	for v := 0; v < n; v++ {
		if deg[v]%2 == 1 {
			odd = append(odd, v)
		}
	}
	// A tree always has an even number ≥ 2 of odd-degree vertices.
	// Matching instance: odd vertices plus two dummies D1, D2. Dummies
	// connect to every odd vertex with weight 0; no dummy–dummy edge, so
	// exactly two odd vertices end up dummy-matched (= trail endpoints).
	k := len(odd)
	var sparse []matching.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sparse = append(sparse, matching.Edge{I: i, J: j, W: ins.Weight(odd[i], odd[j])})
		}
	}
	d1, d2 := k, k+1
	for i := 0; i < k; i++ {
		sparse = append(sparse, matching.Edge{I: i, J: d1, W: 0})
		sparse = append(sparse, matching.Edge{I: i, J: d2, W: 0})
	}
	if canceled(ctx) {
		return nil, 0, ctx.Err()
	}
	mate, _, err := matching.MinWeightPerfectSparse(k+2, sparse)
	if err != nil {
		return nil, 0, fmt.Errorf("tsp: christofides-path matching: %w", err)
	}
	endA, endB := -1, -1
	for i := 0; i < k; i++ {
		switch mate[i] {
		case d1:
			endA = odd[i]
		case d2:
			endB = odd[i]
		default:
			if i < mate[i] {
				mg.AddEdge(odd[i], odd[mate[i]])
			}
		}
	}
	if endA < 0 || endB < 0 {
		return nil, 0, fmt.Errorf("tsp: christofides-path: dummies not both matched")
	}
	if canceled(ctx) {
		return nil, 0, ctx.Err()
	}
	walk, err := mg.Trail(endA, endB)
	if err != nil {
		return nil, 0, fmt.Errorf("tsp: christofides-path euler: %w", err)
	}
	tour := shortcut(walk, n)
	return tour, ins.PathCost(tour), nil
}

// shortcut removes repeated vertices from an Eulerian walk, keeping first
// occurrences (valid on metric instances by the triangle inequality).
func shortcut(walk []int, n int) Tour {
	seen := make([]bool, n)
	tour := make(Tour, 0, n)
	for _, v := range walk {
		if !seen[v] {
			seen[v] = true
			tour = append(tour, v)
		}
	}
	return tour
}
