package tsp

import (
	"fmt"

	"lpltsp/internal/euler"
	"lpltsp/internal/matching"
	"lpltsp/internal/mst"
)

// ChristofidesPathGreedyMatching is the ablation variant of
// ChristofidesPath that replaces the exact blossom matcher with the greedy
// perfect matcher. It quantifies how much of the 1.5 guarantee the exact
// matching buys (DESIGN.md ablation A2): with greedy matching the
// pipeline degrades toward a 2-approximation.
func ChristofidesPathGreedyMatching(ins *Instance) (Tour, int64, error) {
	n := ins.n
	if n <= 2 {
		return identity(n), ins.PathCost(identity(n)), nil
	}
	parent, _ := mst.PrimDense(n, func(i, j int) int64 { return ins.Weight(i, j) })
	deg := make([]int, n)
	mg := euler.NewMultigraph(n)
	for v := 1; v < n; v++ {
		mg.AddEdge(v, parent[v])
		deg[v]++
		deg[parent[v]]++
	}
	var odd []int
	for v := 0; v < n; v++ {
		if deg[v]%2 == 1 {
			odd = append(odd, v)
		}
	}
	// Greedy near-perfect matching on the odd vertices, leaving the two
	// most expensive-to-match vertices unmatched: greedily match all but
	// the final pair, then drop the last (most expensive) pair.
	k := len(odd)
	mate, _, err := matching.GreedyPerfect(k, func(i, j int) int64 {
		return ins.Weight(odd[i], odd[j])
	})
	if err != nil {
		return nil, 0, fmt.Errorf("tsp: greedy matching: %w", err)
	}
	// Find the pair with the largest weight and leave it unmatched (its
	// two endpoints become the trail ends).
	worstI := -1
	var worstW int64 = -1
	for i, j := range mate {
		if i < j {
			if w := ins.Weight(odd[i], odd[j]); w > worstW {
				worstW = w
				worstI = i
			}
		}
	}
	endA, endB := odd[worstI], odd[mate[worstI]]
	for i, j := range mate {
		if i < j && i != worstI {
			mg.AddEdge(odd[i], odd[j])
		}
	}
	walk, err := mg.Trail(endA, endB)
	if err != nil {
		return nil, 0, fmt.Errorf("tsp: greedy-christofides euler: %w", err)
	}
	tour := shortcut(walk, n)
	return tour, ins.PathCost(tour), nil
}
