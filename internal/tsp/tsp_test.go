package tsp

import (
	"testing"

	"lpltsp/internal/rng"
)

// randomInstance returns a random symmetric instance with weights in
// [1, maxW].
func randomInstance(r *rng.RNG, n int, maxW int) *Instance {
	ins := NewInstance(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ins.SetWeight(i, j, int64(1+r.Intn(maxW)))
		}
	}
	return ins
}

// randomMetricInstance returns a random instance with weights in
// {lo..2lo}, which satisfies the triangle inequality (as the paper's
// reduced instances do).
func randomMetricInstance(r *rng.RNG, n int, lo int) *Instance {
	ins := NewInstance(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ins.SetWeight(i, j, int64(lo+r.Intn(lo+1)))
		}
	}
	return ins
}

// brutePath finds the optimal Hamiltonian path by enumerating all
// permutations (free endpoints).
func brutePath(ins *Instance) int64 {
	n := ins.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := int64(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			c := ins.PathCost(perm)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func bruteCycle(ins *Instance) int64 {
	n := ins.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := int64(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			c := ins.CycleCost(perm)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1) // fix rotation
	return best
}

func TestHeldKarpPathVsBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(8)
		ins := randomInstance(r, n, 30)
		tour, cost, err := HeldKarpPath(ins)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if got := ins.PathCost(tour); got != cost {
			t.Fatalf("reported cost %d != recomputed %d", cost, got)
		}
		if want := brutePath(ins); cost != want {
			t.Fatalf("trial %d n=%d: HK path %d, brute %d", trial, n, cost, want)
		}
	}
}

func TestHeldKarpCycleVsBruteForce(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(6)
		ins := randomInstance(r, n, 25)
		tour, cost, err := HeldKarpCycle(ins)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if got := ins.CycleCost(tour); got != cost {
			t.Fatalf("reported cycle cost %d != recomputed %d", cost, got)
		}
		if want := bruteCycle(ins); cost != want {
			t.Fatalf("trial %d n=%d: HK cycle %d, brute %d", trial, n, cost, want)
		}
	}
}

func TestHeldKarpPathBetween(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(6)
		ins := randomInstance(r, n, 20)
		s := r.Intn(n)
		tt := r.Intn(n)
		if s == tt {
			continue
		}
		tour, cost, err := HeldKarpPathBetween(ins, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if tour[0] != s && tour[n-1] != s {
			t.Fatalf("endpoint s=%d not at either end of %v", s, tour)
		}
		if tour[0] != tt && tour[n-1] != tt {
			t.Fatalf("endpoint t=%d not at either end of %v", tt, tour)
		}
		// Fixed-endpoint optimum is ≥ free optimum.
		_, free, _ := HeldKarpPath(ins)
		if cost < free {
			t.Fatalf("fixed-endpoint cost %d below free-endpoint optimum %d", cost, free)
		}
	}
}

func TestHeldKarpSmallSizes(t *testing.T) {
	ins := NewInstance(0)
	tour, cost, err := HeldKarpPath(ins)
	if err != nil || len(tour) != 0 || cost != 0 {
		t.Fatalf("n=0: %v %v %v", tour, cost, err)
	}
	ins = NewInstance(1)
	tour, cost, err = HeldKarpPath(ins)
	if err != nil || len(tour) != 1 || cost != 0 {
		t.Fatalf("n=1: %v %v %v", tour, cost, err)
	}
	ins = NewInstance(2)
	ins.SetWeight(0, 1, 7)
	_, cost, err = HeldKarpPath(ins)
	if err != nil || cost != 7 {
		t.Fatalf("n=2: cost %d err %v", cost, err)
	}
}

func TestHeldKarpRejectsHugeN(t *testing.T) {
	ins := NewInstance(HeldKarpMaxN + 1)
	if _, _, err := HeldKarpPath(ins); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestBranchAndBoundMatchesHeldKarp(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(9)
		ins := randomMetricInstance(r, n, 1+r.Intn(3))
		_, hk, err := HeldKarpPath(ins)
		if err != nil {
			t.Fatal(err)
		}
		tour, bb, err := BranchAndBoundPath(ins)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if hk != bb {
			t.Fatalf("trial %d n=%d: BnB %d != HK %d", trial, n, bb, hk)
		}
	}
}

func TestChristofidesPathRatio(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(9)
		ins := randomMetricInstance(r, n, 1+r.Intn(4))
		if !ins.IsMetric() {
			t.Fatal("generator must be metric")
		}
		tour, cost, err := ChristofidesPath(ins)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		_, opt, _ := HeldKarpPath(ins)
		if float64(cost) > 1.5*float64(opt)+1e-9 {
			t.Fatalf("trial %d n=%d: christofides-path %d > 1.5×opt (%d)", trial, n, cost, opt)
		}
	}
}

func TestChristofidesCycleRatio(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(8)
		ins := randomMetricInstance(r, n, 2)
		tour, cost, err := ChristofidesCycle(ins)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		_, opt, _ := HeldKarpCycle(ins)
		if float64(cost) > 1.5*float64(opt)+1e-9 {
			t.Fatalf("trial %d n=%d: christofides %d > 1.5×opt (%d)", trial, n, cost, opt)
		}
	}
}

func TestTwoOptNeverWorsens(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(30)
		ins := randomInstance(r, n, 100)
		tour := Tour(r.Perm(n))
		before := ins.PathCost(tour)
		delta := TwoOptPath(ins, tour)
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		after := ins.PathCost(tour)
		if after != before+delta {
			t.Fatalf("delta accounting: before=%d delta=%d after=%d", before, delta, after)
		}
		if after > before {
			t.Fatalf("2-opt worsened: %d -> %d", before, after)
		}
	}
}

func TestOrOptNeverWorsens(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(30)
		ins := randomInstance(r, n, 100)
		tour := Tour(r.Perm(n))
		before := ins.PathCost(tour)
		delta := OrOptPath(ins, tour)
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		after := ins.PathCost(tour)
		if after != before+delta {
			t.Fatalf("delta accounting: before=%d delta=%d after=%d", before, delta, after)
		}
		if after > before {
			t.Fatalf("or-opt worsened: %d -> %d", before, after)
		}
	}
}

func TestChainedFindsOptimumOnSmall(t *testing.T) {
	r := rng.New(9)
	misses := 0
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(8)
		ins := randomMetricInstance(r, n, 2)
		_, opt, _ := HeldKarpPath(ins)
		tour, cost := ChainedLocalSearch(ins, &ChainedOptions{Restarts: 4, Kicks: 25, Seed: uint64(trial) + 1})
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if cost < opt {
			t.Fatalf("heuristic beat the optimum: %d < %d", cost, opt)
		}
		if cost != opt {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("chained search missed the optimum on %d/20 small metric instances", misses)
	}
}

func TestConstructionValidity(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		ins := randomInstance(r, n, 50)
		for _, tour := range []Tour{
			NearestNeighborFrom(ins, 0),
			GreedyEdgePath(ins),
		} {
			if err := ins.ValidateTour(tour); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
		tour, cost := NearestNeighborBest(ins)
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		if cost != ins.PathCost(tour) {
			t.Fatal("NearestNeighborBest cost mismatch")
		}
	}
}

func TestSolveDispatch(t *testing.T) {
	r := rng.New(11)
	ins := randomMetricInstance(r, 9, 2)
	_, opt, _ := HeldKarpPath(ins)
	for _, algo := range Algorithms() {
		tour, cost, err := Solve(ins, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if cost < opt {
			t.Fatalf("%s returned cost %d below optimum %d", algo, cost, opt)
		}
		if cost != ins.PathCost(tour) {
			t.Fatalf("%s: reported cost %d != path cost %d", algo, cost, ins.PathCost(tour))
		}
	}
	if _, _, err := Solve(ins, "nope", nil); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestIsMetric(t *testing.T) {
	ins := NewInstance(3)
	ins.SetWeight(0, 1, 1)
	ins.SetWeight(1, 2, 1)
	ins.SetWeight(0, 2, 3) // violates triangle inequality
	if ins.IsMetric() {
		t.Fatal("expected non-metric")
	}
	ins.SetWeight(0, 2, 2)
	if !ins.IsMetric() {
		t.Fatal("expected metric")
	}
}

func TestMinMaxWeight(t *testing.T) {
	ins := NewInstance(3)
	ins.SetWeight(0, 1, 2)
	ins.SetWeight(1, 2, 5)
	ins.SetWeight(0, 2, 3)
	min, max := ins.MinMaxWeight()
	if min != 2 || max != 5 {
		t.Fatalf("min=%d max=%d, want 2 and 5", min, max)
	}
}
