// Package tsp implements the traveling-salesman machinery the paper's
// reduction targets: symmetric TSP instances, Hamiltonian cycle and path
// objectives, exact solvers (Held–Karp dynamic programming, branch and
// bound), the Christofides / Hoogeveen approximation pipeline, and a
// chained local-search heuristic family (2-opt, Or-opt, double-bridge
// restarts) standing in for Lin–Kernighan-style engines.
//
// The paper reduces L(p)-LABELING on diameter-≤k graphs to METRIC PATH TSP
// (free endpoints); everything here therefore supports the path objective
// natively, with cycle variants provided for completeness and tests.
//
// # Instance representations
//
// An Instance comes in two physical layouts behind one API:
//
//   - Dense: an n×n int64 weight matrix (NewInstance/SetWeight). The
//     general-purpose form used by tests and ad-hoc instances.
//   - Compact (weight-class): the reduction's instances have weights
//     w(u,v) = p[dist(u,v)-1], so at most k = dim(p) distinct values
//     occur. NewClassInstance stores only a shared row-major []uint16
//     distance matrix plus a (diameter+1)-entry distance→weight lookup
//     table — 2 bytes per entry instead of 8, with zero copying of the
//     matrix the reduction already computed.
//
// Compact instances are immutable and additionally expose the weight-class
// structure (classOf/classW): the distinct weights sorted ascending and a
// distance→class-rank map. Engines exploit it for comparison-sort-free
// neighbor lists and counting-sorted edge sweeps (O(n²) instead of
// O(n² log n)).
//
// # Memory model
//
// A compact Instance aliases the caller's distance matrix read-only; it is
// never written through. Engines treat every Instance as read-only while
// solving, so one compact Instance (and hence one distance matrix) may be
// shared by many concurrently racing engines and batch workers. Hot-path
// scratch (neighbor lists, don't-look bits, DP layers, BnB node buffers)
// comes from package-level sync.Pools, so steady-state solving does no
// per-instance heap allocation beyond the returned tours.
package tsp

import "fmt"

// Instance is a symmetric TSP instance on n vertices with int64 weights.
// The diagonal is 0. Two backings exist: dense (explicit weight matrix) and
// compact (shared distance matrix + weight-class lookup; see the package
// comment). Instances produced by the labeling reduction are compact and
// satisfy the triangle inequality (weights within [pmin, 2pmin]).
type Instance struct {
	n int
	w []int64 // dense backing; nil for compact instances

	// Compact (weight-class) backing. dist is the shared row-major
	// distance matrix (aliased, read-only); lut[d] is the weight of
	// distance class d with lut[0] = 0, truncated to the largest distance
	// actually present. classOf[d] ranks distance d among the distinct
	// weights (ascending); classW lists those distinct weights ascending.
	dist    []uint16
	lut     []int64
	classOf []int32
	classW  []int64
}

// NewInstance returns a dense instance with all weights zero.
func NewInstance(n int) *Instance {
	if n < 0 {
		panic("tsp: negative size")
	}
	return &Instance{n: n, w: make([]int64, n*n)}
}

// NewClassInstance returns a compact instance over a row-major n×n distance
// matrix and per-distance class weights: Weight(i,j) =
// classWeights[dist[i*n+j]-1]. The matrix is aliased read-only, not copied
// — the caller must not mutate it while the instance is in use (sharing it
// across concurrent solvers is fine, and the point). Every off-diagonal
// entry of dist must be in [1, len(classWeights)] and every diagonal entry
// 0; violations panic, since they would silently corrupt every solve.
func NewClassInstance(n int, dist []uint16, classWeights []int64) *Instance {
	if n < 0 {
		panic("tsp: negative size")
	}
	if len(dist) != n*n {
		panic(fmt.Sprintf("tsp: distance matrix has %d entries for n=%d", len(dist), n))
	}
	maxd := 0
	occurs := make([]bool, len(classWeights)+1)
	for i := 0; i < n; i++ {
		row := dist[i*n : (i+1)*n]
		for j, d := range row {
			switch {
			case i == j:
				if d != 0 {
					panic("tsp: nonzero diagonal distance")
				}
			case d == 0 || int(d) > len(classWeights):
				panic(fmt.Sprintf("tsp: distance %d outside weight classes [1,%d]", d, len(classWeights)))
			default:
				occurs[d] = true
				if int(d) > maxd {
					maxd = int(d)
				}
			}
		}
	}
	// lut[0] = 0 keeps diagonal lookups branch-free; truncate to the
	// largest distance present. The class structure (classOf/classW) is
	// built only from distances that actually occur between some pair —
	// reduction matrices are BFS-continuous so every 1..maxd occurs, but
	// hand-built matrices may have gaps, and a phantom class would make
	// MinMaxWeight and the bucket sweeps report weights present between
	// no vertices.
	lut := make([]int64, maxd+1)
	copy(lut[1:], classWeights[:maxd])
	// Rank the occurring distances by weight ascending (stable in d).
	order := make([]int32, 0, maxd)
	for d := 1; d <= maxd; d++ {
		if occurs[d] {
			order = append(order, int32(d))
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lut[order[j]] < lut[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	classOf := make([]int32, maxd+1)
	classW := make([]int64, 0, len(order))
	for _, d := range order {
		if len(classW) == 0 || classW[len(classW)-1] != lut[d] {
			classW = append(classW, lut[d])
		}
		classOf[d] = int32(len(classW) - 1)
	}
	return &Instance{n: n, dist: dist, lut: lut, classOf: classOf, classW: classW}
}

// N returns the number of vertices.
func (ins *Instance) N() int { return ins.n }

// Compact reports whether the instance uses the weight-class backing.
func (ins *Instance) Compact() bool { return ins.dist != nil }

// Classes returns the number of distinct weights: the weight-class count
// for compact instances (≤ dim(p) for reduced instances), 0 for dense ones
// (callers needing it must scan).
func (ins *Instance) Classes() int { return len(ins.classW) }

// Weight returns w(i,j).
func (ins *Instance) Weight(i, j int) int64 {
	if ins.dist == nil {
		return ins.w[i*ins.n+j]
	}
	return ins.lut[ins.dist[i*ins.n+j]]
}

// SetWeight sets w(i,j) = w(j,i) = x. Dense instances only — compact
// instances view a shared distance matrix and are immutable.
func (ins *Instance) SetWeight(i, j int, x int64) {
	if ins.w == nil {
		panic("tsp: SetWeight on a compact (weight-class) instance")
	}
	if i == j {
		panic("tsp: diagonal weight must stay zero")
	}
	ins.w[i*ins.n+j] = x
	ins.w[j*ins.n+i] = x
}

// Row returns the dense weight row of i (shared storage; read-only). It is
// the dense fast path only; compact callers use distRow/lut or Weight.
func (ins *Instance) Row(i int) []int64 {
	if ins.w == nil {
		panic("tsp: Row on a compact (weight-class) instance")
	}
	return ins.w[i*ins.n : (i+1)*ins.n]
}

// distRow returns the distance row of i for compact instances (nil for
// dense ones). In-package engines pair it with ins.lut for branch-free
// weight lookups inside hot loops.
func (ins *Instance) distRow(i int) []uint16 {
	if ins.dist == nil {
		return nil
	}
	return ins.dist[i*ins.n : (i+1)*ins.n]
}

// Densify returns a dense copy of the instance (the identity for dense
// input, a materialized weight matrix for compact input). Intended for
// equivalence tests and callers that must mutate weights.
func (ins *Instance) Densify() *Instance {
	out := NewInstance(ins.n)
	if ins.w != nil {
		copy(out.w, ins.w)
		return out
	}
	for i := 0; i < ins.n; i++ {
		drow := ins.distRow(i)
		wrow := out.w[i*ins.n : (i+1)*ins.n]
		for j, d := range drow {
			wrow[j] = ins.lut[d]
		}
	}
	return out
}

// MinMaxWeight returns the smallest and largest off-diagonal weights.
// For n < 2 it returns (0, 0). Compact instances answer in O(1) from the
// weight classes; dense instances scan the upper triangle (symmetry makes
// the lower triangle redundant).
func (ins *Instance) MinMaxWeight() (min, max int64) {
	if ins.n < 2 {
		return 0, 0
	}
	if ins.dist != nil {
		return ins.classW[0], ins.classW[len(ins.classW)-1]
	}
	min = ins.w[1] // w(0,1)
	for i := 0; i < ins.n; i++ {
		row := ins.w[i*ins.n : (i+1)*ins.n]
		for j := i + 1; j < ins.n; j++ {
			w := row[j]
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
	}
	return min, max
}

// IsMetric reports whether the weights satisfy the triangle inequality.
// O(n³); intended for tests and validation, not hot paths.
func (ins *Instance) IsMetric() bool {
	n := ins.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			wij := ins.Weight(i, j)
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if ins.Weight(i, k)+ins.Weight(k, j) < wij {
					return false
				}
			}
		}
	}
	return true
}

// Tour is a permutation of 0..n-1. Interpreted as a Hamiltonian path in
// visit order, or as a Hamiltonian cycle with an implicit closing edge.
type Tour []int

// PathCost returns the weight of the Hamiltonian path t[0]-t[1]-…-t[n-1].
func (ins *Instance) PathCost(t Tour) int64 {
	var c int64
	n := ins.n
	if ins.dist != nil {
		dist, lut := ins.dist, ins.lut
		for i := 0; i+1 < len(t); i++ {
			c += lut[dist[t[i]*n+t[i+1]]]
		}
		return c
	}
	for i := 0; i+1 < len(t); i++ {
		c += ins.w[t[i]*n+t[i+1]]
	}
	return c
}

// CycleCost returns PathCost plus the closing edge t[n-1]→t[0].
func (ins *Instance) CycleCost(t Tour) int64 {
	if len(t) < 2 {
		return 0
	}
	return ins.PathCost(t) + ins.Weight(t[len(t)-1], t[0])
}

// ValidateTour checks that t is a permutation of 0..n-1.
func (ins *Instance) ValidateTour(t Tour) error {
	if len(t) != ins.n {
		return fmt.Errorf("tsp: tour length %d != n %d", len(t), ins.n)
	}
	seen := make([]bool, ins.n)
	for _, v := range t {
		if v < 0 || v >= ins.n {
			return fmt.Errorf("tsp: tour vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("tsp: tour repeats vertex %d", v)
		}
		seen[v] = true
	}
	return nil
}

// Clone returns a copy of the tour.
func (t Tour) Clone() Tour { return append(Tour(nil), t...) }

// identity returns the identity tour on n vertices.
func identity(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = i
	}
	return t
}
