// Package tsp implements the traveling-salesman machinery the paper's
// reduction targets: symmetric TSP instances, Hamiltonian cycle and path
// objectives, exact solvers (Held–Karp dynamic programming, branch and
// bound), the Christofides / Hoogeveen approximation pipeline, and a
// chained local-search heuristic family (2-opt, Or-opt, double-bridge
// restarts) standing in for Lin–Kernighan-style engines.
//
// The paper reduces L(p)-LABELING on diameter-≤k graphs to METRIC PATH TSP
// (free endpoints); everything here therefore supports the path objective
// natively, with cycle variants provided for completeness and tests.
package tsp

import "fmt"

// Instance is a symmetric TSP instance on n vertices with int64 weights,
// stored dense. The diagonal is 0. Instances produced by the labeling
// reduction satisfy the triangle inequality (weights within [pmin, 2pmin]).
type Instance struct {
	n int
	w []int64
}

// NewInstance returns an instance with all weights zero.
func NewInstance(n int) *Instance {
	if n < 0 {
		panic("tsp: negative size")
	}
	return &Instance{n: n, w: make([]int64, n*n)}
}

// N returns the number of vertices.
func (ins *Instance) N() int { return ins.n }

// Weight returns w(i,j).
func (ins *Instance) Weight(i, j int) int64 { return ins.w[i*ins.n+j] }

// SetWeight sets w(i,j) = w(j,i) = x.
func (ins *Instance) SetWeight(i, j int, x int64) {
	if i == j {
		panic("tsp: diagonal weight must stay zero")
	}
	ins.w[i*ins.n+j] = x
	ins.w[j*ins.n+i] = x
}

// Row returns the weight row of i (shared storage; read-only).
func (ins *Instance) Row(i int) []int64 { return ins.w[i*ins.n : (i+1)*ins.n] }

// MinMaxWeight returns the smallest and largest off-diagonal weights.
// For n < 2 it returns (0, 0).
func (ins *Instance) MinMaxWeight() (min, max int64) {
	if ins.n < 2 {
		return 0, 0
	}
	min = ins.Weight(0, 1)
	for i := 0; i < ins.n; i++ {
		for j := 0; j < ins.n; j++ {
			if i == j {
				continue
			}
			w := ins.Weight(i, j)
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
	}
	return min, max
}

// IsMetric reports whether the weights satisfy the triangle inequality.
// O(n³); intended for tests and validation, not hot paths.
func (ins *Instance) IsMetric() bool {
	n := ins.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			wij := ins.Weight(i, j)
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if ins.Weight(i, k)+ins.Weight(k, j) < wij {
					return false
				}
			}
		}
	}
	return true
}

// Tour is a permutation of 0..n-1. Interpreted as a Hamiltonian path in
// visit order, or as a Hamiltonian cycle with an implicit closing edge.
type Tour []int

// PathCost returns the weight of the Hamiltonian path t[0]-t[1]-…-t[n-1].
func (ins *Instance) PathCost(t Tour) int64 {
	var c int64
	for i := 0; i+1 < len(t); i++ {
		c += ins.Weight(t[i], t[i+1])
	}
	return c
}

// CycleCost returns PathCost plus the closing edge t[n-1]→t[0].
func (ins *Instance) CycleCost(t Tour) int64 {
	if len(t) < 2 {
		return 0
	}
	return ins.PathCost(t) + ins.Weight(t[len(t)-1], t[0])
}

// ValidateTour checks that t is a permutation of 0..n-1.
func (ins *Instance) ValidateTour(t Tour) error {
	if len(t) != ins.n {
		return fmt.Errorf("tsp: tour length %d != n %d", len(t), ins.n)
	}
	seen := make([]bool, ins.n)
	for _, v := range t {
		if v < 0 || v >= ins.n {
			return fmt.Errorf("tsp: tour vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("tsp: tour repeats vertex %d", v)
		}
		seen[v] = true
	}
	return nil
}

// Clone returns a copy of the tour.
func (t Tour) Clone() Tour { return append(Tour(nil), t...) }

// identity returns the identity tour on n vertices.
func identity(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = i
	}
	return t
}
