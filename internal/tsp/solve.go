package tsp

import "context"

// Algorithm names a path-TSP solving strategy. Every Algorithm constant
// below is backed by an Engine in the registry (engine.go); dispatch goes
// through Lookup, so external packages can Register additional engines and
// have them picked up by Solve, the core portfolio, and the CLIs.
type Algorithm string

const (
	// AlgoExact picks Held–Karp for n ≤ HeldKarpMaxN, else branch and
	// bound for n ≤ BnBMaxN, else errors.
	AlgoExact Algorithm = "exact"
	// AlgoHeldKarp forces the O(2ⁿn²) dynamic program.
	AlgoHeldKarp Algorithm = "heldkarp"
	// AlgoBnB forces branch and bound (anytime: yields its incumbent on
	// deadline).
	AlgoBnB Algorithm = "bnb"
	// AlgoChristofides is the 1.5-approximation pipeline (path variant).
	AlgoChristofides Algorithm = "christofides"
	// AlgoChained is the chained local-search heuristic (LK stand-in;
	// anytime).
	AlgoChained Algorithm = "chained"
	// AlgoTwoOpt is greedy-edge construction plus 2-opt + Or-opt.
	AlgoTwoOpt Algorithm = "2opt"
	// AlgoThreeOpt is AlgoTwoOpt plus a final 3-opt polishing pass.
	AlgoThreeOpt Algorithm = "3opt"
	// AlgoNearestNeighbor is multi-start nearest neighbor only.
	AlgoNearestNeighbor Algorithm = "nn"
	// AlgoGreedyEdge is greedy edge construction only.
	AlgoGreedyEdge Algorithm = "greedy"
)

// SolveOptions tunes Solve and the engine factories.
type SolveOptions struct {
	// Chained configures AlgoChained (and the branch-and-bound warm start).
	Chained *ChainedOptions
}

// Solve computes a Hamiltonian path of ins with the requested algorithm
// and returns the path and its cost. Exact algorithms return a guaranteed
// optimum; heuristics return their best-found path. It is the
// context-free form of SolveContext.
func Solve(ins *Instance, algo Algorithm, opts *SolveOptions) (Tour, int64, error) {
	t, st, err := SolveContext(context.Background(), ins, algo, opts)
	if err != nil {
		return nil, 0, err
	}
	return t, st.Cost, nil
}

// SolveContext resolves algo through the engine registry and solves the
// path objective under ctx. Cancellation is cooperative: anytime engines
// (branch and bound, chained, the local-search family) return their best
// incumbent with Stats.Truncated set; engines without an incumbent return
// ctx.Err().
func SolveContext(ctx context.Context, ins *Instance, algo Algorithm, opts *SolveOptions) (Tour, Stats, error) {
	if ins.n == 0 {
		return Tour{}, Stats{Optimal: true}, nil
	}
	eng, err := New(algo, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return eng.Solve(ctx, ins, ObjectivePath)
}
