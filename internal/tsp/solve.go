package tsp

import "fmt"

// Algorithm names a path-TSP solving strategy exposed by Solve and by the
// public lpltsp API.
type Algorithm string

const (
	// AlgoExact picks Held–Karp for n ≤ HeldKarpMaxN, else branch and
	// bound for n ≤ BnBMaxN, else errors.
	AlgoExact Algorithm = "exact"
	// AlgoHeldKarp forces the O(2ⁿn²) dynamic program.
	AlgoHeldKarp Algorithm = "heldkarp"
	// AlgoBnB forces branch and bound.
	AlgoBnB Algorithm = "bnb"
	// AlgoChristofides is the 1.5-approximation pipeline (path variant).
	AlgoChristofides Algorithm = "christofides"
	// AlgoChained is the chained local-search heuristic (LK stand-in).
	AlgoChained Algorithm = "chained"
	// AlgoTwoOpt is greedy-edge construction plus 2-opt + Or-opt.
	AlgoTwoOpt Algorithm = "2opt"
	// AlgoNearestNeighbor is multi-start nearest neighbor only.
	AlgoNearestNeighbor Algorithm = "nn"
	// AlgoGreedyEdge is greedy edge construction only.
	AlgoGreedyEdge Algorithm = "greedy"
)

// Algorithms lists all registered algorithm names.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoExact, AlgoHeldKarp, AlgoBnB, AlgoChristofides,
		AlgoChained, AlgoTwoOpt, AlgoNearestNeighbor, AlgoGreedyEdge,
	}
}

// SolveOptions tunes Solve.
type SolveOptions struct {
	// Chained configures AlgoChained (optional).
	Chained *ChainedOptions
}

// Solve computes a Hamiltonian path of ins with the requested algorithm
// and returns the path and its cost. Exact algorithms return a guaranteed
// optimum; heuristics return their best-found path.
func Solve(ins *Instance, algo Algorithm, opts *SolveOptions) (Tour, int64, error) {
	if ins.n == 0 {
		return Tour{}, 0, nil
	}
	switch algo {
	case AlgoExact:
		if ins.n <= HeldKarpMaxN {
			return HeldKarpPath(ins)
		}
		return BranchAndBoundPath(ins)
	case AlgoHeldKarp:
		return HeldKarpPath(ins)
	case AlgoBnB:
		return BranchAndBoundPath(ins)
	case AlgoChristofides:
		return ChristofidesPath(ins)
	case AlgoChained:
		var co *ChainedOptions
		if opts != nil {
			co = opts.Chained
		}
		t, c := ChainedLocalSearch(ins, co)
		return t, c, nil
	case AlgoTwoOpt:
		t := GreedyEdgePath(ins)
		TwoOptPath(ins, t)
		OrOptPath(ins, t)
		return t, ins.PathCost(t), nil
	case AlgoNearestNeighbor:
		t, c := NearestNeighborBest(ins)
		return t, c, nil
	case AlgoGreedyEdge:
		t := GreedyEdgePath(ins)
		return t, ins.PathCost(t), nil
	default:
		return nil, 0, fmt.Errorf("tsp: unknown algorithm %q", algo)
	}
}
