package tsp

import "context"

// ThreeOptPath improves the tour in place with first-improvement 3-opt
// moves for the path objective until a local optimum, returning the
// applied delta (≤ 0). A 3-opt move removes three edges (i−1,i), (j−1,j),
// (k−1,k) of the path and reconnects the three segments; the reconnection
// cases not already reachable by a single 2-opt reversal are the segment
// exchange and the double reversal, both tried here. O(n³) per sweep —
// use as a polishing pass after TwoOptPath/OrOptPath on moderate n.
func ThreeOptPath(ins *Instance, t Tour) int64 {
	d, _ := threeOptPath(context.Background(), ins, t)
	return d
}

// threeOptPath is ThreeOptPath with a cancellation checkpoint between
// applied moves (each sweep restarts after a move, so the check bounds
// work to one O(n³) scan past cancellation on the instance sizes this
// pass targets). It reports, along with the applied delta, whether the
// descent ran to a local optimum (false means it was cut short by ctx).
func threeOptPath(ctx context.Context, ins *Instance, t Tour) (int64, bool) {
	n := len(t)
	var total int64
	if n < 5 {
		return 0, true
	}
	sc := getSegScratch(n)
	defer putSegScratch(sc)
	improved := true
	for improved {
		if canceled(ctx) {
			return total, false
		}
		improved = false
		// Segments: A = t[:i], B = t[i:j], C = t[j:k], D = t[k:]
		// (A and D may be empty heads/tails of the path). We try the two
		// pure 3-opt reconnections:
		//   swap:      A C B D
		//   swap+rev:  A rev(C) rev(B) D
		for i := 0; i < n-1 && !improved; i++ {
			for j := i + 1; j < n && !improved; j++ {
				for k := j + 1; k <= n && !improved; k++ {
					if delta := try3opt(ins, t, i, j, k, sc); delta < 0 {
						total += delta
						improved = true
					}
				}
			}
		}
	}
	return total, true
}

// try3opt evaluates the two reconnections for cut points (i,j,k) and
// applies the better one if improving, rebuilding segments in sc's pooled
// buffers. Returns the applied delta (0 if none).
func try3opt(ins *Instance, t Tour, i, j, k int, sc *segScratch) int64 {
	n := len(t)
	// Boundary vertices: a = last of A (or -1), d = first of D (or -1).
	a, d := -1, -1
	if i > 0 {
		a = t[i-1]
	}
	if k < n {
		d = t[k]
	}
	bFirst, bLast := t[i], t[j-1]
	cFirst, cLast := t[j], t[k-1]

	cur := ins.Weight(bLast, cFirst) // the B|C junction always breaks
	if a >= 0 {
		cur += ins.Weight(a, bFirst)
	}
	if d >= 0 {
		cur += ins.Weight(cLast, d)
	}

	// Case 1: A C B D — junctions a|cFirst, cLast|bFirst, bLast|d.
	case1 := ins.Weight(cLast, bFirst)
	if a >= 0 {
		case1 += ins.Weight(a, cFirst)
	}
	if d >= 0 {
		case1 += ins.Weight(bLast, d)
	}
	// Case 2: A rev(C) rev(B) D — junctions a|cLast, cFirst|bLast,
	// bFirst|d.
	case2 := ins.Weight(cFirst, bLast)
	if a >= 0 {
		case2 += ins.Weight(a, cLast)
	}
	if d >= 0 {
		case2 += ins.Weight(bFirst, d)
	}

	best := case1
	rev := false
	if case2 < best {
		best = case2
		rev = true
	}
	delta := best - cur
	if delta >= 0 {
		return 0
	}
	// Apply: rebuild t[i:k].
	segB := sc.segB[:j-i]
	copy(segB, t[i:j])
	segC := sc.segC[:k-j]
	copy(segC, t[j:k])
	if rev {
		reverseInts(segB)
		reverseInts(segC)
	}
	copy(t[i:], segC)
	copy(t[i+len(segC):], segB)
	return delta
}

func reverseInts(s []int) {
	for a, b := 0, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
}
