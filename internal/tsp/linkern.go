package tsp

import (
	"runtime"
	"sync"

	"lpltsp/internal/rng"
)

// ChainedOptions configures the chained local-search heuristic.
type ChainedOptions struct {
	// Restarts is the number of independent chains (each from its own
	// construction). Default: GOMAXPROCS.
	Restarts int
	// Kicks is the number of double-bridge perturbations per chain.
	// Default: 40.
	Kicks int
	// Seed seeds the perturbation RNG. Chains derive independent streams.
	Seed uint64
}

func (o *ChainedOptions) defaults() ChainedOptions {
	d := ChainedOptions{Restarts: runtime.GOMAXPROCS(0), Kicks: 40, Seed: 1}
	if o == nil {
		return d
	}
	if o.Restarts > 0 {
		d.Restarts = o.Restarts
	}
	if o.Kicks > 0 {
		d.Kicks = o.Kicks
	}
	if o.Seed != 0 {
		d.Seed = o.Seed
	}
	return d
}

// ChainedLocalSearch is the library's stand-in for chained Lin–Kernighan:
// greedy-edge construction, 2-opt + Or-opt to a local optimum, then
// repeated double-bridge kicks with re-optimization, keeping the best path
// found. Chains run in parallel; the overall best is returned.
func ChainedLocalSearch(ins *Instance, opts *ChainedOptions) (Tour, int64) {
	o := opts.defaults()
	n := ins.n
	if n <= 3 {
		t, _, _ := HeldKarpPath(ins)
		return t, ins.PathCost(t)
	}
	root := rng.New(o.Seed)
	seeds := make([]*rng.RNG, o.Restarts)
	for i := range seeds {
		seeds[i] = root.Split()
	}

	type result struct {
		tour Tour
		cost int64
	}
	results := make(chan result, o.Restarts)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > o.Restarts {
		workers = o.Restarts
	}
	var mu sync.Mutex
	next := 0
	grab := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= o.Restarts {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				chain := grab()
				if chain < 0 {
					return
				}
				r := seeds[chain]
				var t Tour
				if chain == 0 {
					t = GreedyEdgePath(ins)
				} else if chain == 1 {
					t, _ = NearestNeighborBest(ins)
				} else {
					t = Tour(r.Perm(n))
				}
				// Exhaustive 2-opt on small instances; neighbor-list
				// 2-opt with don't-look bits once O(n²) sweeps start to
				// dominate.
				optimize := func(tr Tour) {
					if n <= 160 {
						TwoOptPath(ins, tr)
					} else {
						TwoOptPathFast(ins, tr, 12)
					}
					OrOptPath(ins, tr)
				}
				optimize(t)
				best := t.Clone()
				bestC := ins.PathCost(best)
				cur := t
				for kick := 0; kick < o.Kicks; kick++ {
					doubleBridge(cur, r)
					optimize(cur)
					c := ins.PathCost(cur)
					if c < bestC {
						bestC = c
						copy(best, cur)
					} else {
						copy(cur, best) // restart kick from the best
					}
				}
				results <- result{best, bestC}
			}
		}()
	}
	wg.Wait()
	close(results)
	var best Tour
	bestC := int64(-1)
	for res := range results {
		if bestC < 0 || res.cost < bestC {
			best, bestC = res.tour, res.cost
		}
	}
	return best, bestC
}

// doubleBridge applies the classic 4-opt double-bridge perturbation adapted
// to the path objective: the tour is cut into four consecutive segments
// A B C D and reassembled as A C B D.
func doubleBridge(t Tour, r *rng.RNG) {
	n := len(t)
	if n < 8 {
		// Tiny tours: swap two random vertices instead.
		i, j := r.Intn(n), r.Intn(n)
		t[i], t[j] = t[j], t[i]
		return
	}
	// 1 ≤ p1 < p2 < p3 < n
	p1 := 1 + r.Intn(n-3)
	p2 := p1 + 1 + r.Intn(n-p1-2)
	p3 := p2 + 1 + r.Intn(n-p2-1)
	out := make(Tour, 0, n)
	out = append(out, t[:p1]...)
	out = append(out, t[p2:p3]...)
	out = append(out, t[p1:p2]...)
	out = append(out, t[p3:]...)
	copy(t, out)
}
