package tsp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"lpltsp/internal/rng"
)

// ChainedOptions configures the chained local-search heuristic.
type ChainedOptions struct {
	// Restarts is the number of independent chains (each from its own
	// construction). Default: GOMAXPROCS.
	Restarts int
	// Kicks is the number of double-bridge perturbations per chain.
	// Default: 40.
	Kicks int
	// Seed seeds the perturbation RNG. Chains derive independent streams.
	Seed uint64
}

func (o *ChainedOptions) defaults() ChainedOptions {
	d := ChainedOptions{Restarts: runtime.GOMAXPROCS(0), Kicks: 40, Seed: 1}
	if o == nil {
		return d
	}
	if o.Restarts > 0 {
		d.Restarts = o.Restarts
	}
	if o.Kicks > 0 {
		d.Kicks = o.Kicks
	}
	if o.Seed != 0 {
		d.Seed = o.Seed
	}
	return d
}

// ChainedLocalSearch is the library's stand-in for chained Lin–Kernighan:
// greedy-edge construction, 2-opt + Or-opt to a local optimum, then
// repeated double-bridge kicks with re-optimization, keeping the best path
// found. Chains run in parallel; the overall best is returned.
func ChainedLocalSearch(ins *Instance, opts *ChainedOptions) (Tour, int64) {
	t, c, _ := chainedLocalSearch(context.Background(), ins, opts)
	return t, c
}

// ChainedLocalSearchContext is the anytime form of ChainedLocalSearch:
// chains check ctx between kicks (and the inner sweeps check it between
// passes), so after cancellation the best tour found so far is returned
// promptly. Even with an already-expired context a valid construction tour
// comes back — the engine never returns an empty result on a nonempty
// instance.
func ChainedLocalSearchContext(ctx context.Context, ins *Instance, opts *ChainedOptions) (Tour, int64) {
	t, c, _ := chainedLocalSearch(ctx, ins, opts)
	return t, c
}

// chainedLocalSearch returns the best tour, its cost, and the number of
// chains that ran to completion (== o.Restarts when nothing was cut
// short, which is how the engine distinguishes a truncated run from a
// deadline that fired just after convergence).
func chainedLocalSearch(ctx context.Context, ins *Instance, opts *ChainedOptions) (Tour, int64, int64) {
	o := opts.defaults()
	n := ins.n
	if n <= 3 {
		t, _, _ := HeldKarpPath(ins)
		return t, ins.PathCost(t), int64(o.Restarts)
	}
	if canceled(ctx) {
		// Deadline already blown: hand back the cheapest construction so
		// the caller still gets an anytime result promptly. (Greedy-edge
		// would sort all n² edges — too much work past a deadline.)
		t := NearestNeighborFrom(ins, 0)
		return t, ins.PathCost(t), 0
	}
	root := rng.New(o.Seed)
	seeds := make([]*rng.RNG, o.Restarts)
	for i := range seeds {
		seeds[i] = root.Split()
	}

	type result struct {
		tour     Tour
		cost     int64
		finished bool
	}
	results := make(chan result, o.Restarts)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > o.Restarts {
		workers = o.Restarts
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker arena: one double-bridge rebuild buffer serves
			// every kick of every chain this worker runs.
			bridge := make(Tour, n)
			for {
				chain := int(next.Add(1) - 1)
				if chain >= o.Restarts || canceled(ctx) {
					return
				}
				r := seeds[chain]
				var t Tour
				if chain == 0 {
					t = GreedyEdgePath(ins)
				} else if chain == 1 {
					t, _, _ = nearestNeighborBest(ctx, ins)
				} else {
					t = Tour(r.Perm(n))
				}
				// Exhaustive 2-opt on small instances; neighbor-list
				// 2-opt with don't-look bits once O(n²) sweeps start to
				// dominate. Reports whether every descent converged.
				optimize := func(tr Tour) bool {
					var ok1, ok2 bool
					if n <= 160 {
						_, ok1 = twoOptPath(ctx, ins, tr)
					} else {
						_, ok1 = twoOptPathFast(ctx, ins, tr, 12)
					}
					_, ok2 = orOptPath(ctx, ins, tr)
					return ok1 && ok2
				}
				finished := optimize(t)
				best := t.Clone()
				bestC := ins.PathCost(best)
				cur := t
				for kick := 0; kick < o.Kicks; kick++ {
					if canceled(ctx) {
						finished = false
						break
					}
					doubleBridge(cur, r, bridge)
					if !optimize(cur) {
						finished = false
					}
					c := ins.PathCost(cur)
					if c < bestC {
						bestC = c
						copy(best, cur)
					} else {
						copy(cur, best) // restart kick from the best
					}
				}
				results <- result{best, bestC, finished}
			}
		}()
	}
	wg.Wait()
	close(results)
	var best Tour
	bestC := int64(-1)
	var completed int64
	for res := range results {
		if res.finished {
			completed++
		}
		if bestC < 0 || res.cost < bestC {
			best, bestC = res.tour, res.cost
		}
	}
	if best == nil {
		// All chains were cancelled before producing a tour.
		best = NearestNeighborFrom(ins, 0)
		bestC = ins.PathCost(best)
	}
	return best, bestC, completed
}

// doubleBridge applies the classic 4-opt double-bridge perturbation adapted
// to the path objective: the tour is cut into four consecutive segments
// A B C D and reassembled as A C B D. buf is an n-sized rebuild buffer
// owned by the caller (reused across kicks).
func doubleBridge(t Tour, r *rng.RNG, buf Tour) {
	n := len(t)
	if n < 8 {
		// Tiny tours: swap two random vertices instead.
		i, j := r.Intn(n), r.Intn(n)
		t[i], t[j] = t[j], t[i]
		return
	}
	// 1 ≤ p1 < p2 < p3 < n
	p1 := 1 + r.Intn(n-3)
	p2 := p1 + 1 + r.Intn(n-p1-2)
	p3 := p2 + 1 + r.Intn(n-p2-1)
	out := buf[:0]
	out = append(out, t[:p1]...)
	out = append(out, t[p2:p3]...)
	out = append(out, t[p1:p2]...)
	out = append(out, t[p3:]...)
	copy(t, out)
}
