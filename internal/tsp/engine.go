package tsp

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Objective selects what an Engine optimizes over the instance.
type Objective int

const (
	// ObjectivePath asks for a minimum-weight Hamiltonian path with free
	// endpoints — the objective the labeling reduction needs (Theorem 2).
	ObjectivePath Objective = iota
	// ObjectiveCycle asks for a minimum-weight Hamiltonian cycle.
	ObjectiveCycle
)

func (o Objective) String() string {
	switch o {
	case ObjectivePath:
		return "path"
	case ObjectiveCycle:
		return "cycle"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ErrUnsupportedObjective is returned by engines that do not implement the
// requested objective (most heuristics are path-only).
var ErrUnsupportedObjective = errors.New("tsp: objective not supported by engine")

// Stats describes how an engine run ended.
type Stats struct {
	// Cost is the objective value of the returned tour.
	Cost int64
	// Optimal reports that the tour is provably optimal (exact engine ran
	// to completion).
	Optimal bool
	// Truncated reports that the engine stopped early because its context
	// was cancelled or its deadline expired, returning its best-so-far
	// (anytime) result rather than a finished computation.
	Truncated bool
	// Nodes is an engine-specific work counter: branch-and-bound nodes
	// expanded, chains completed, restarts finished. Zero when an engine
	// does not track one.
	Nodes int64
}

// Engine is a pluggable path/cycle TSP solver. Implementations must honor
// context cancellation cooperatively: after ctx is done an engine returns
// promptly, either with its best-so-far tour (Stats.Truncated set) or with
// ctx.Err() when it has no incumbent to offer. Engines must be safe for
// concurrent use by multiple goroutines on distinct or shared instances
// (instances are read-only during solving), which is what lets the core
// portfolio race them.
type Engine interface {
	// Name returns the registry name of the engine.
	Name() Algorithm
	// Solve computes a tour of ins for the given objective.
	Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error)
}

// EngineFactory builds an engine configured by opts (which may be nil).
type EngineFactory func(opts *SolveOptions) Engine

var (
	regMu    sync.RWMutex
	registry = map[Algorithm]EngineFactory{}
	regOrder []Algorithm
)

// Register adds an engine factory under the given name. It panics on an
// empty name, a nil factory, or a duplicate registration — engine names are
// the dispatch and CLI surface, so collisions are programmer errors.
func Register(name Algorithm, f EngineFactory) {
	if name == "" {
		panic("tsp: Register with empty algorithm name")
	}
	if f == nil {
		panic("tsp: Register with nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("tsp: Register called twice for %q", name))
	}
	registry[name] = f
	regOrder = append(regOrder, name)
}

// Lookup returns the factory registered under name.
func Lookup(name Algorithm) (EngineFactory, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tsp: unknown algorithm %q", name)
	}
	return f, nil
}

// New instantiates the named engine with the given options (opts may be
// nil for defaults).
func New(name Algorithm, opts *SolveOptions) (Engine, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(opts), nil
}

// Algorithms lists all registered engine names in registration order, which
// is kept stable (exact first, constructions last).
func Algorithms() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Algorithm(nil), regOrder...)
}

// canceled reports whether ctx is already done, without blocking. Engines
// use it as their cooperative cancellation checkpoint.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func init() {
	Register(AlgoExact, func(o *SolveOptions) Engine { return exactEngine{chained(o)} })
	Register(AlgoHeldKarp, func(*SolveOptions) Engine { return heldKarpEngine{} })
	Register(AlgoBnB, func(o *SolveOptions) Engine { return bnbEngine{chained(o)} })
	Register(AlgoChristofides, func(*SolveOptions) Engine { return christofidesEngine{} })
	Register(AlgoChained, func(o *SolveOptions) Engine { return chainedEngine{chained(o)} })
	Register(AlgoTwoOpt, func(*SolveOptions) Engine { return twoOptEngine{} })
	Register(AlgoThreeOpt, func(*SolveOptions) Engine { return threeOptEngine{} })
	Register(AlgoNearestNeighbor, func(*SolveOptions) Engine { return nnEngine{} })
	Register(AlgoGreedyEdge, func(*SolveOptions) Engine { return greedyEngine{} })
}

func chained(o *SolveOptions) *ChainedOptions {
	if o == nil {
		return nil
	}
	return o.Chained
}

// exactEngine solves the path objective with Held–Karp within its memory
// budget and branch and bound beyond it; the path branch is anytime (a
// deadline yields an incumbent instead of an error). The cycle objective
// is Held–Karp only — there is no cycle branch and bound — so past the
// Held–Karp budget or on cancellation it errors per the Engine contract
// (no incumbent to surrender).
type exactEngine struct{ chained *ChainedOptions }

func (exactEngine) Name() Algorithm { return AlgoExact }

func (e exactEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj == ObjectiveCycle {
		t, c, err := heldKarp(ctx, ins, -1, -1, true)
		if err != nil {
			return nil, Stats{}, err
		}
		return t, Stats{Cost: c, Optimal: true}, nil
	}
	if ins.n <= HeldKarpMaxN {
		t, st, err := heldKarpEngine{}.Solve(ctx, ins, obj)
		if err != nil && ctx.Err() != nil {
			// The DP was cancelled before completing. Keep the exact
			// engine uniformly anytime across instance sizes (its larger
			// branch-and-bound regime yields an incumbent on deadline) by
			// surrendering a cheap construction tour instead of failing.
			t = NearestNeighborFrom(ins, 0)
			return t, Stats{Cost: ins.PathCost(t), Truncated: true}, nil
		}
		return t, st, err
	}
	return bnbEngine{e.chained}.Solve(ctx, ins, obj)
}

type heldKarpEngine struct{}

func (heldKarpEngine) Name() Algorithm { return AlgoHeldKarp }

func (heldKarpEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	cycle := obj == ObjectiveCycle
	t, c, err := heldKarp(ctx, ins, -1, -1, cycle)
	if err != nil {
		return nil, Stats{}, err
	}
	return t, Stats{Cost: c, Optimal: true}, nil
}

type bnbEngine struct{ chained *ChainedOptions }

func (bnbEngine) Name() Algorithm { return AlgoBnB }

func (e bnbEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoBnB, obj)
	}
	return branchAndBoundPath(ctx, ins, e.chained)
}

type christofidesEngine struct{}

func (christofidesEngine) Name() Algorithm { return AlgoChristofides }

func (christofidesEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	var (
		t   Tour
		c   int64
		err error
	)
	if obj == ObjectiveCycle {
		t, c, err = christofidesCycle(ctx, ins)
	} else {
		t, c, err = christofidesPath(ctx, ins)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	return t, Stats{Cost: c}, nil
}

type chainedEngine struct{ opts *ChainedOptions }

func (chainedEngine) Name() Algorithm { return AlgoChained }

func (e chainedEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoChained, obj)
	}
	t, c, chains := chainedLocalSearch(ctx, ins, e.opts)
	want := int64(e.opts.defaults().Restarts)
	return t, Stats{Cost: c, Truncated: chains < want, Nodes: chains}, nil
}

type twoOptEngine struct{}

func (twoOptEngine) Name() Algorithm { return AlgoTwoOpt }

func (twoOptEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoTwoOpt, obj)
	}
	if canceled(ctx) {
		t := NearestNeighborFrom(ins, 0)
		return t, Stats{Cost: ins.PathCost(t), Truncated: true}, nil
	}
	t := GreedyEdgePath(ins)
	_, ok1 := twoOptPath(ctx, ins, t)
	_, ok2 := orOptPath(ctx, ins, t)
	return t, Stats{Cost: ins.PathCost(t), Truncated: !(ok1 && ok2)}, nil
}

// threeOptEngine is the polishing variant: the 2-opt/Or-opt pipeline plus a
// final 3-opt pass (segment exchange and double reversal), the deepest
// local-search neighborhood in the family. O(n³) per sweep — intended for
// moderate n or as a portfolio member under a deadline.
type threeOptEngine struct{}

func (threeOptEngine) Name() Algorithm { return AlgoThreeOpt }

func (threeOptEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoThreeOpt, obj)
	}
	if canceled(ctx) {
		t := NearestNeighborFrom(ins, 0)
		return t, Stats{Cost: ins.PathCost(t), Truncated: true}, nil
	}
	t := GreedyEdgePath(ins)
	_, ok1 := twoOptPath(ctx, ins, t)
	_, ok2 := orOptPath(ctx, ins, t)
	_, ok3 := threeOptPath(ctx, ins, t)
	return t, Stats{Cost: ins.PathCost(t), Truncated: !(ok1 && ok2 && ok3)}, nil
}

type nnEngine struct{}

func (nnEngine) Name() Algorithm { return AlgoNearestNeighbor }

func (nnEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoNearestNeighbor, obj)
	}
	t, c, starts := nearestNeighborBest(ctx, ins)
	return t, Stats{Cost: c, Truncated: starts < int64(ins.n), Nodes: starts}, nil
}

type greedyEngine struct{}

func (greedyEngine) Name() Algorithm { return AlgoGreedyEdge }

func (greedyEngine) Solve(ctx context.Context, ins *Instance, obj Objective) (Tour, Stats, error) {
	if obj != ObjectivePath {
		return nil, Stats{}, fmt.Errorf("%w: %s/%s", ErrUnsupportedObjective, AlgoGreedyEdge, obj)
	}
	t := GreedyEdgePath(ins)
	return t, Stats{Cost: ins.PathCost(t)}, nil
}
