package tsp

import (
	"context"
	"fmt"

	"lpltsp/internal/mst"
)

// BnBMaxN bounds the branch-and-bound solver; beyond it the search tree is
// impractical without stronger bounding machinery.
const BnBMaxN = 36

// BranchAndBoundPath solves PATH TSP with free endpoints exactly by
// depth-first branch and bound. The lower bound for a partial path is its
// cost plus an MST over the unvisited vertices together with the cheapest
// connection from the current endpoint; the initial upper bound comes from
// the chained heuristic. It extends the exact range past Held–Karp's
// memory limit (n ≤ BnBMaxN instead of n ≤ HeldKarpMaxN).
func BranchAndBoundPath(ins *Instance) (Tour, int64, error) {
	t, st, err := branchAndBoundPath(context.Background(), ins, nil)
	if err != nil {
		return nil, 0, err
	}
	return t, st.Cost, nil
}

// BranchAndBoundPathContext is the anytime form of BranchAndBoundPath: when
// ctx is cancelled mid-search it stops promptly and returns the incumbent
// tour (initially the chained-heuristic warm start) with Stats.Truncated
// set instead of erroring. Stats.Optimal is set only when the search tree
// was exhausted.
func BranchAndBoundPathContext(ctx context.Context, ins *Instance) (Tour, Stats, error) {
	return branchAndBoundPath(ctx, ins, nil)
}

func branchAndBoundPath(ctx context.Context, ins *Instance, warm *ChainedOptions) (Tour, Stats, error) {
	n := ins.n
	if n > BnBMaxN {
		return nil, Stats{}, fmt.Errorf("tsp: branch and bound limited to n <= %d, got %d", BnBMaxN, n)
	}
	if n <= 3 {
		t, c, err := heldKarp(ctx, ins, -1, -1, false)
		if err != nil {
			if ctx.Err() != nil {
				// Honor the anytime contract even here: any permutation
				// of ≤ 3 vertices is a valid incumbent.
				t = identity(n)
				return t, Stats{Cost: ins.PathCost(t), Truncated: true}, nil
			}
			return nil, Stats{}, err
		}
		return t, Stats{Cost: c, Optimal: true}, nil
	}
	// The warm start exists only to seed the upper bound; unless the
	// caller explicitly tuned the chained engine (nonzero restarts/kicks),
	// use a deliberately light configuration — full chained defaults
	// (GOMAXPROCS chains) can dominate the n ≤ 36 search they prime.
	if warm == nil || (warm.Restarts == 0 && warm.Kicks == 0) {
		seed := uint64(12345)
		if warm != nil && warm.Seed != 0 {
			seed = warm.Seed
		}
		warm = &ChainedOptions{Restarts: 4, Kicks: 30, Seed: seed}
	}
	ub, ubCost, _ := chainedLocalSearch(ctx, ins, warm)
	s := &bnbState{
		ctx:   ctx,
		ins:   ins,
		best:  ub.Clone(),
		bestC: ubCost,
		cur:   make(Tour, 0, n),
		used:  make([]bool, n),
	}
	// Free endpoints: try each start vertex. Symmetry halves the work
	// (a path and its reverse have equal cost), so only starts with
	// index ≤ the other endpoint need exploring; simplest correct pruning
	// is to try all starts — the bound prunes aggressively anyway.
	for start := 0; start < n && !s.stopped; start++ {
		s.cur = append(s.cur[:0], start)
		s.used[start] = true
		s.dfs(start, 0)
		s.used[start] = false
	}
	return s.best, Stats{
		Cost:      s.bestC,
		Optimal:   !s.stopped,
		Truncated: s.stopped,
		Nodes:     s.nodes,
	}, nil
}

type bnbState struct {
	ctx     context.Context
	ins     *Instance
	best    Tour
	bestC   int64
	cur     Tour
	used    []bool
	nodes   int64
	stopped bool
}

// ctxCheckInterval is how many expanded nodes pass between cooperative
// cancellation checks; a power of two so the test is a mask.
const ctxCheckInterval = 1024

func (s *bnbState) dfs(last int, cost int64) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.nodes&(ctxCheckInterval-1) == 0 && canceled(s.ctx) {
		s.stopped = true
		return
	}
	n := s.ins.n
	if len(s.cur) == n {
		if cost < s.bestC {
			s.bestC = cost
			copy(s.best, s.cur)
		}
		return
	}
	if cost+s.lowerBound(last) >= s.bestC {
		return
	}
	// Branch on unvisited vertices in increasing edge-weight order.
	row := s.ins.Row(last)
	order := make([]int, 0, n-len(s.cur))
	for v := 0; v < n; v++ {
		if !s.used[v] {
			order = append(order, v)
		}
	}
	// Insertion sort by row weight (lists are small near the leaves).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && row[order[j]] < row[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, v := range order {
		if s.stopped {
			return
		}
		s.used[v] = true
		s.cur = append(s.cur, v)
		s.dfs(v, cost+row[v])
		s.cur = s.cur[:len(s.cur)-1]
		s.used[v] = false
	}
}

// lowerBound returns a lower bound on completing the path from `last`
// through all unvisited vertices: MST over unvisited ∪ {last} (any
// completion is a spanning connected subgraph of that set).
func (s *bnbState) lowerBound(last int) int64 {
	n := s.ins.n
	rest := make([]int, 0, n-len(s.cur)+1)
	rest = append(rest, last)
	for v := 0; v < n; v++ {
		if !s.used[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) <= 1 {
		return 0
	}
	_, total := mst.PrimDense(len(rest), func(i, j int) int64 {
		return s.ins.Weight(rest[i], rest[j])
	})
	return total
}
