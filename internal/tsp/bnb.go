package tsp

import (
	"context"
	"fmt"
	"sync"

	"lpltsp/internal/mst"
)

// BnBMaxN bounds the branch-and-bound solver; beyond it the search tree is
// impractical without stronger bounding machinery.
const BnBMaxN = 36

// BranchAndBoundPath solves PATH TSP with free endpoints exactly by
// depth-first branch and bound. The lower bound for a partial path is its
// cost plus an MST over the unvisited vertices together with the cheapest
// connection from the current endpoint; the initial upper bound comes from
// the chained heuristic. It extends the exact range past Held–Karp's
// memory limit (n ≤ BnBMaxN instead of n ≤ HeldKarpMaxN).
func BranchAndBoundPath(ins *Instance) (Tour, int64, error) {
	t, st, err := branchAndBoundPath(context.Background(), ins, nil)
	if err != nil {
		return nil, 0, err
	}
	return t, st.Cost, nil
}

// BranchAndBoundPathContext is the anytime form of BranchAndBoundPath: when
// ctx is cancelled mid-search it stops promptly and returns the incumbent
// tour (initially the chained-heuristic warm start) with Stats.Truncated
// set instead of erroring. Stats.Optimal is set only when the search tree
// was exhausted.
func BranchAndBoundPathContext(ctx context.Context, ins *Instance) (Tour, Stats, error) {
	return branchAndBoundPath(ctx, ins, nil)
}

func branchAndBoundPath(ctx context.Context, ins *Instance, warm *ChainedOptions) (Tour, Stats, error) {
	n := ins.n
	if n > BnBMaxN {
		return nil, Stats{}, fmt.Errorf("tsp: branch and bound limited to n <= %d, got %d", BnBMaxN, n)
	}
	if n <= 3 {
		t, c, err := heldKarp(ctx, ins, -1, -1, false)
		if err != nil {
			if ctx.Err() != nil {
				// Honor the anytime contract even here: any permutation
				// of ≤ 3 vertices is a valid incumbent.
				t = identity(n)
				return t, Stats{Cost: ins.PathCost(t), Truncated: true}, nil
			}
			return nil, Stats{}, err
		}
		return t, Stats{Cost: c, Optimal: true}, nil
	}
	// The warm start exists only to seed the upper bound; unless the
	// caller explicitly tuned the chained engine (nonzero restarts/kicks),
	// use a deliberately light configuration — full chained defaults
	// (GOMAXPROCS chains) can dominate the n ≤ 36 search they prime.
	if warm == nil || (warm.Restarts == 0 && warm.Kicks == 0) {
		seed := uint64(12345)
		if warm != nil && warm.Seed != 0 {
			seed = warm.Seed
		}
		warm = &ChainedOptions{Restarts: 4, Kicks: 30, Seed: seed}
	}
	ub, ubCost, _ := chainedLocalSearch(ctx, ins, warm)
	s := getBnBState(n)
	defer putBnBState(s)
	s.ctx = ctx
	s.ins = ins
	s.best = ub.Clone()
	s.bestC = ubCost
	// Free endpoints: try each start vertex. Symmetry halves the work
	// (a path and its reverse have equal cost), so only starts with
	// index ≤ the other endpoint need exploring; simplest correct pruning
	// is to try all starts — the bound prunes aggressively anyway.
	for start := 0; start < n && !s.stopped; start++ {
		s.cur = append(s.cur[:0], start)
		s.used[start] = true
		s.dfs(start, 0)
		s.used[start] = false
	}
	return s.best, Stats{
		Cost:      s.bestC,
		Optimal:   !s.stopped,
		Truncated: s.stopped,
		Nodes:     s.nodes,
	}, nil
}

type bnbState struct {
	ctx     context.Context
	ins     *Instance
	best    Tour
	bestC   int64
	cur     Tour
	used    []bool
	nodes   int64
	stopped bool

	// Pooled per-node scratch: one branching-order slab per search depth,
	// a class-counting buffer for compact instances, the lower bound's
	// vertex list, and Prim's working arrays. These make the search tree
	// allocation-free (the dominant engine cost past Held–Karp sizes).
	orderBuf []int32
	cnt      []int32
	rest     []int
	prim     mst.PrimScratch
}

var bnbPool = sync.Pool{New: func() any { return new(bnbState) }}

func getBnBState(n int) *bnbState {
	s := bnbPool.Get().(*bnbState)
	if cap(s.used) < n {
		s.used = make([]bool, n)
		s.orderBuf = make([]int32, n*n)
		s.rest = make([]int, n)
		s.cur = make(Tour, 0, n)
	}
	s.used = s.used[:n]
	for i := range s.used {
		s.used[i] = false
	}
	s.orderBuf = s.orderBuf[:n*n]
	s.rest = s.rest[:n]
	s.cur = s.cur[:0]
	s.nodes = 0
	s.stopped = false
	return s
}

func putBnBState(s *bnbState) {
	// Drop references that would otherwise outlive the solve in the pool.
	s.ctx = nil
	s.ins = nil
	s.best = nil
	bnbPool.Put(s)
}

// ctxCheckInterval is how many expanded nodes pass between cooperative
// cancellation checks; a power of two so the test is a mask.
const ctxCheckInterval = 1024

func (s *bnbState) dfs(last int, cost int64) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.nodes&(ctxCheckInterval-1) == 0 && canceled(s.ctx) {
		s.stopped = true
		return
	}
	n := s.ins.n
	if len(s.cur) == n {
		if cost < s.bestC {
			s.bestC = cost
			copy(s.best, s.cur)
		}
		return
	}
	if cost+s.lowerBound(last) >= s.bestC {
		return
	}
	// Branch on unvisited vertices in increasing edge-weight order, using
	// one pooled order slab per depth (the recursion below reuses deeper
	// slabs). Compact instances order by a counting pass over the weight
	// classes; dense ones insertion-sort (lists are small near leaves).
	// Both produce the same (weight, index) order.
	depth := len(s.cur)
	order := s.orderBuf[depth*n : depth*n : (depth+1)*n]
	if drow := s.ins.distRow(last); drow != nil {
		classOf := s.ins.classOf
		classes := len(s.ins.classW)
		if cap(s.cnt) < classes+1 {
			s.cnt = make([]int32, classes+1)
		}
		cnt := s.cnt[:classes+1]
		for c := range cnt {
			cnt[c] = 0
		}
		for v := 0; v < n; v++ {
			if !s.used[v] {
				cnt[classOf[drow[v]]+1]++
			}
		}
		for c := 2; c < len(cnt); c++ {
			cnt[c] += cnt[c-1]
		}
		order = order[:n-depth]
		for v := 0; v < n; v++ {
			if !s.used[v] {
				c := classOf[drow[v]]
				order[cnt[c]] = int32(v)
				cnt[c]++
			}
		}
	} else {
		row := s.ins.Row(last)
		for v := 0; v < n; v++ {
			if !s.used[v] {
				order = append(order, int32(v))
			}
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && row[order[j]] < row[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	for _, v32 := range order {
		if s.stopped {
			return
		}
		v := int(v32)
		s.used[v] = true
		s.cur = append(s.cur, v)
		s.dfs(v, cost+s.ins.Weight(last, v))
		s.cur = s.cur[:len(s.cur)-1]
		s.used[v] = false
	}
}

// lowerBound returns a lower bound on completing the path from `last`
// through all unvisited vertices: MST over unvisited ∪ {last} (any
// completion is a spanning connected subgraph of that set). The vertex
// list and Prim's arrays come from the pooled state — the bound runs once
// per node, so it must not allocate.
func (s *bnbState) lowerBound(last int) int64 {
	n := s.ins.n
	rest := s.rest[:0]
	rest = append(rest, last)
	for v := 0; v < n; v++ {
		if !s.used[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) <= 1 {
		return 0
	}
	return s.prim.Total(len(rest), func(i, j int) int64 {
		return s.ins.Weight(rest[i], rest[j])
	})
}
