package tsp

import (
	"testing"

	"lpltsp/internal/rng"
)

func TestTwoOptFastNeverWorsens(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(60)
		ins := randomInstance(r, n, 100)
		tour := Tour(r.Perm(n))
		before := ins.PathCost(tour)
		delta := TwoOptPathFast(ins, tour, 8)
		if err := ins.ValidateTour(tour); err != nil {
			t.Fatal(err)
		}
		after := ins.PathCost(tour)
		if after != before+delta {
			t.Fatalf("delta accounting: before=%d delta=%d after=%d", before, delta, after)
		}
		if after > before {
			t.Fatalf("fast 2-opt worsened: %d -> %d", before, after)
		}
	}
}

func TestTwoOptFastWithFullNeighborsMatchesQuality(t *testing.T) {
	// With k = n−1 the restricted neighborhood is the full one, so the
	// final cost must be a true 2-opt local optimum: running the
	// exhaustive TwoOptPath afterwards must find nothing.
	r := rng.New(52)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(20)
		ins := randomInstance(r, n, 50)
		tour := Tour(r.Perm(n))
		TwoOptPathFast(ins, tour, n-1)
		if d := TwoOptPath(ins, tour); d < 0 {
			t.Fatalf("trial %d: exhaustive 2-opt improved a full-neighborhood fast result by %d", trial, d)
		}
	}
}

func TestTwoOptFastLargeInstance(t *testing.T) {
	r := rng.New(53)
	n := 400
	ins := NewInstance(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ins.SetWeight(i, j, int64(1+r.Intn(2)))
		}
	}
	tour := Tour(r.Perm(n))
	before := ins.PathCost(tour)
	TwoOptPathFast(ins, tour, 10)
	after := ins.PathCost(tour)
	if err := ins.ValidateTour(tour); err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("no improvement on random tour of 2-valued metric: %d -> %d", before, after)
	}
}

func TestNearestNeighborsShape(t *testing.T) {
	r := rng.New(54)
	ins := randomInstance(r, 12, 30)
	nb := nearestNeighbors(ins, 5)
	for v, list := range nb {
		if len(list) != 5 {
			t.Fatalf("vertex %d has %d neighbors, want 5", v, len(list))
		}
		row := ins.Row(v)
		for i := 1; i < len(list); i++ {
			if row[list[i-1]] > row[list[i]] {
				t.Fatalf("vertex %d neighbor list not sorted by weight", v)
			}
		}
		for _, u := range list {
			if int(u) == v {
				t.Fatalf("vertex %d lists itself", v)
			}
		}
	}
}
