package tsp

import (
	"context"
)

// TwoOptPathFast is the neighbor-list variant of TwoOptPath for larger
// instances: each vertex keeps its K nearest neighbors and carries a
// don't-look bit; only moves whose first new edge connects a vertex to one
// of its near neighbors are examined. This is the classical engineering of
// Lin–Kernighan-style 2-opt (Bentley) and makes the sweep close to linear
// per pass in practice. Returns the applied delta (≤ 0).
//
// The result is a 2-opt local optimum with respect to the restricted
// neighborhood only; TwoOptPath (exhaustive) remains the reference
// implementation and the two agree on small instances in tests.
func TwoOptPathFast(ins *Instance, t Tour, k int) int64 {
	d, _ := twoOptPathFast(context.Background(), ins, t, k)
	return d
}

// twoOptPathFast is TwoOptPathFast with a cancellation checkpoint every
// few hundred queue pops. It reports, along with the applied delta,
// whether the queue drained to a (restricted-neighborhood) local optimum.
// All working state (neighbor lists, queues, don't-look bits) is pooled.
func twoOptPathFast(ctx context.Context, ins *Instance, t Tour, k int) (int64, bool) {
	n := len(t)
	if n < 3 {
		return 0, true
	}
	if k <= 0 {
		k = 10
	}
	if k > n-1 {
		k = n - 1
	}
	sc := getTwoOptScratch(n, k, ins.Classes())
	defer putTwoOptScratch(sc)
	nbr := nearestNeighborsInto(ins, k, sc)
	pos := sc.pos // pos[v] = index of v in t
	for i, v := range t {
		pos[v] = int32(i)
	}
	dontLook, inQueue, queue := sc.dontLook, sc.inQueue, sc.queue
	for i := 0; i < n; i++ {
		dontLook[i] = false
		inQueue[i] = true
		queue[i] = int32(i)
	}
	head, tail := 0, n
	push := func(v int) {
		if !inQueue[v] {
			inQueue[v] = true
			queue[tail%n] = int32(v)
			tail++
		}
	}
	var total int64
	pops := 0
	for head < tail {
		pops++
		if pops&255 == 0 && canceled(ctx) {
			return total, false
		}
		v := int(queue[head%n])
		head++
		inQueue[v] = false
		if dontLook[v] {
			continue
		}
		improvedHere := false
		// Try 2-opt moves that create the edge {v,w} for a near neighbor
		// w. With i < j the two ways to create (t[i],t[j]) are:
		//   A: reverse t[i+1..j]  — junctions (t[i],t[j]) and (t[i+1],t[j+1])
		//   B: reverse t[i..j-1]  — junctions (t[i-1],t[j-1]) and (t[i],t[j])
		// A handles suffix reversals (j = n−1), B handles prefix
		// reversals (i = 0); together they cover the full path 2-opt
		// neighborhood.
		for _, w := range nbr[v*k : (v+1)*k] {
			i, j := int(pos[v]), int(pos[w])
			if i > j {
				i, j = j, i
			}
			if j-i < 1 {
				continue
			}
			newEdge := ins.Weight(t[i], t[j])
			// Move A.
			deltaA := newEdge - ins.Weight(t[i], t[i+1])
			if j+1 < n {
				deltaA += ins.Weight(t[i+1], t[j+1]) - ins.Weight(t[j], t[j+1])
			}
			// Move B.
			deltaB := newEdge - ins.Weight(t[j-1], t[j])
			if i > 0 {
				deltaB += ins.Weight(t[i-1], t[j-1]) - ins.Weight(t[i-1], t[i])
			}
			var lo, hi int
			var delta int64
			switch {
			case deltaA < 0 && deltaA <= deltaB:
				lo, hi, delta = i+1, j, deltaA
			case deltaB < 0:
				lo, hi, delta = i, j-1, deltaB
			default:
				continue
			}
			reverseSeg(t, lo, hi)
			for x := lo; x <= hi; x++ {
				pos[t[x]] = int32(x)
			}
			total += delta
			improvedHere = true
			// Wake the endpoints of every changed edge.
			for _, u := range [2]int{v, int(w)} {
				dontLook[u] = false
				push(u)
			}
			for _, x := range [4]int{lo - 1, lo, hi, hi + 1} {
				if x >= 0 && x < n {
					dontLook[t[x]] = false
					push(t[x])
				}
			}
		}
		if !improvedHere {
			dontLook[v] = true
		} else {
			push(v)
		}
	}
	return total, true
}

// nearestNeighbors is the slice-of-slices form of nearestNeighborsInto,
// kept for tests and ad-hoc callers (it copies out of the pooled scratch).
func nearestNeighbors(ins *Instance, k int) [][]int32 {
	n := ins.n
	kk := k
	if kk > n-1 {
		kk = n - 1
	}
	if kk < 0 {
		kk = 0
	}
	sc := getTwoOptScratch(n, kk, ins.Classes())
	defer putTwoOptScratch(sc)
	flat := nearestNeighborsInto(ins, kk, sc)
	out := make([][]int32, n)
	for v := range out {
		out[v] = append([]int32(nil), flat[v*kk:(v+1)*kk]...)
	}
	return out
}

// nearestNeighborsInto fills sc.nbr with, for each vertex, its kk nearest
// other vertices by weight (ties broken by index), stored flat with stride
// kk, and returns that slice. The caller guarantees kk ≤ n-1.
//
// Compact instances are bucketed by weight class — one O(n) counting pass
// per vertex, no comparison sort (the ≤k-distinct-weights structure of the
// reduction's instances). Since classOf ranks classes by weight and the
// scan visits vertices in index order, the bucket order is exactly the
// (weight, index) order of the dense path. Dense instances use a bounded
// insertion pass (O(n·kk) per vertex, allocation-free).
func nearestNeighborsInto(ins *Instance, kk int, sc *twoOptScratch) []int32 {
	n := ins.n
	out := sc.nbr
	if kk == 0 {
		return out[:0]
	}
	if ins.Compact() {
		classOf, cnt, buckets := ins.classOf, sc.start, sc.bucket
		classes := len(ins.classW)
		cnt = cnt[:classes]
		// One pass per vertex: append u to its weight class's bucket,
		// capped at kk entries per class — no class can contribute more
		// than kk slots to the output, so later arrivals in a full class
		// are irrelevant. Scanning u ascending keeps every bucket
		// index-sorted, and classes are already ranked by weight, so
		// concatenating the buckets yields the exact (weight, index)
		// order of the dense path.
		for v := 0; v < n; v++ {
			drow := ins.distRow(v)
			for c := range cnt {
				cnt[c] = 0
			}
			for u, d := range drow {
				if u == v {
					continue
				}
				c := classOf[d]
				if filled := cnt[c]; filled < int32(kk) {
					buckets[int(c)*kk+int(filled)] = int32(u)
					cnt[c] = filled + 1
				}
			}
			dst := out[v*kk : (v+1)*kk]
			pos := 0
			for c := 0; c < classes && pos < kk; c++ {
				take := int(cnt[c])
				if take > kk-pos {
					take = kk - pos
				}
				copy(dst[pos:pos+take], buckets[c*kk:c*kk+take])
				pos += take
			}
		}
		return out
	}
	for v := 0; v < n; v++ {
		row := ins.w[v*n : (v+1)*n]
		top := out[v*kk : v*kk : (v+1)*kk]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			w := row[u]
			if len(top) == kk {
				lw := row[top[kk-1]]
				if w > lw || (w == lw && int32(u) > top[kk-1]) {
					continue
				}
				top = top[:kk-1]
			}
			// Insert u keeping (weight, index) order; scan from the tail —
			// most candidates land near it.
			i := len(top)
			top = top[:i+1]
			for i > 0 {
				pw := row[top[i-1]]
				if pw < w || (pw == w && top[i-1] < int32(u)) {
					break
				}
				top[i] = top[i-1]
				i--
			}
			top[i] = int32(u)
		}
	}
	return out
}
