package tsp

import (
	"context"
	"sort"
)

// TwoOptPathFast is the neighbor-list variant of TwoOptPath for larger
// instances: each vertex keeps its K nearest neighbors and carries a
// don't-look bit; only moves whose first new edge connects a vertex to one
// of its near neighbors are examined. This is the classical engineering of
// Lin–Kernighan-style 2-opt (Bentley) and makes the sweep close to linear
// per pass in practice. Returns the applied delta (≤ 0).
//
// The result is a 2-opt local optimum with respect to the restricted
// neighborhood only; TwoOptPath (exhaustive) remains the reference
// implementation and the two agree on small instances in tests.
func TwoOptPathFast(ins *Instance, t Tour, k int) int64 {
	d, _ := twoOptPathFast(context.Background(), ins, t, k)
	return d
}

// twoOptPathFast is TwoOptPathFast with a cancellation checkpoint every
// few hundred queue pops. It reports, along with the applied delta,
// whether the queue drained to a (restricted-neighborhood) local optimum.
func twoOptPathFast(ctx context.Context, ins *Instance, t Tour, k int) (int64, bool) {
	n := len(t)
	if n < 3 {
		return 0, true
	}
	if k <= 0 {
		k = 10
	}
	if k > n-1 {
		k = n - 1
	}
	neighbors := nearestNeighbors(ins, k)
	pos := make([]int, n) // pos[v] = index of v in t
	for i, v := range t {
		pos[v] = i
	}
	dontLook := make([]bool, n)
	queue := make([]int, n)
	inQueue := make([]bool, n)
	head, tail := 0, 0
	push := func(v int) {
		if !inQueue[v] {
			inQueue[v] = true
			queue[tail%n] = v
			tail++
		}
	}
	for v := 0; v < n; v++ {
		push(v)
	}
	var total int64
	pops := 0
	for head < tail {
		pops++
		if pops&255 == 0 && canceled(ctx) {
			return total, false
		}
		v := queue[head%n]
		head++
		inQueue[v] = false
		if dontLook[v] {
			continue
		}
		improvedHere := false
		// Try 2-opt moves that create the edge {v,w} for a near neighbor
		// w. With i < j the two ways to create (t[i],t[j]) are:
		//   A: reverse t[i+1..j]  — junctions (t[i],t[j]) and (t[i+1],t[j+1])
		//   B: reverse t[i..j-1]  — junctions (t[i-1],t[j-1]) and (t[i],t[j])
		// A handles suffix reversals (j = n−1), B handles prefix
		// reversals (i = 0); together they cover the full path 2-opt
		// neighborhood.
		for _, w := range neighbors[v] {
			i, j := pos[v], pos[int(w)]
			if i > j {
				i, j = j, i
			}
			if j-i < 1 {
				continue
			}
			newEdge := ins.Weight(t[i], t[j])
			// Move A.
			deltaA := newEdge - ins.Weight(t[i], t[i+1])
			if j+1 < n {
				deltaA += ins.Weight(t[i+1], t[j+1]) - ins.Weight(t[j], t[j+1])
			}
			// Move B.
			deltaB := newEdge - ins.Weight(t[j-1], t[j])
			if i > 0 {
				deltaB += ins.Weight(t[i-1], t[j-1]) - ins.Weight(t[i-1], t[i])
			}
			var lo, hi int
			var delta int64
			switch {
			case deltaA < 0 && deltaA <= deltaB:
				lo, hi, delta = i+1, j, deltaA
			case deltaB < 0:
				lo, hi, delta = i, j-1, deltaB
			default:
				continue
			}
			reverseSeg(t, lo, hi)
			for x := lo; x <= hi; x++ {
				pos[t[x]] = x
			}
			total += delta
			improvedHere = true
			// Wake the endpoints of every changed edge.
			for _, u := range [2]int{v, int(w)} {
				dontLook[u] = false
				push(u)
			}
			for _, x := range [4]int{lo - 1, lo, hi, hi + 1} {
				if x >= 0 && x < n {
					dontLook[t[x]] = false
					push(t[x])
				}
			}
		}
		if !improvedHere {
			dontLook[v] = true
		} else {
			push(v)
		}
	}
	return total, true
}

// nearestNeighbors returns, for each vertex, its k nearest other vertices
// by weight (ties broken by index).
func nearestNeighbors(ins *Instance, k int) [][]int32 {
	n := ins.n
	out := make([][]int32, n)
	idx := make([]int32, n)
	for v := 0; v < n; v++ {
		row := ins.Row(v)
		cnt := 0
		for u := 0; u < n; u++ {
			if u != v {
				idx[cnt] = int32(u)
				cnt++
			}
		}
		cand := idx[:cnt]
		sort.Slice(cand, func(a, b int) bool {
			wa, wb := row[cand[a]], row[cand[b]]
			if wa != wb {
				return wa < wb
			}
			return cand[a] < cand[b]
		})
		kk := k
		if kk > cnt {
			kk = cnt
		}
		out[v] = append([]int32(nil), cand[:kk]...)
	}
	return out
}
