package tsp

import (
	"sync"

	"lpltsp/internal/dsu"
)

// Hot-path scratch pooling. Every engine leaf routine (neighbor-list
// construction, 2-opt queues, Or-opt/3-opt segment buffers, greedy edge
// sweeps, the Held–Karp DP layers, branch-and-bound node state) draws its
// working buffers from the package-level pools below instead of allocating
// per call. Batch workers and portfolio racers therefore converge on a
// small steady-state set of buffers: after warm-up, solving an instance
// allocates only its result tour. Pools hand out single structs (not raw
// slices), so Get/Put never re-boxes slice headers.
//
// Invariant: pooled buffers are always fully (re)initialized by their
// consumer before use; nothing relies on pooled contents.

// twoOptScratch backs twoOptPathFast: position index, don't-look bits, the
// wake queue, and the flat neighbor lists.
type twoOptScratch struct {
	pos      []int32
	queue    []int32
	inQueue  []bool
	dontLook []bool
	nbr      []int32 // flat neighbor lists, stride kk
	bucket   []int32 // neighbor-bucketing scratch (compact instances)
	start    []int32 // per-class bucket offsets (compact instances)
}

var twoOptPool = sync.Pool{New: func() any { return new(twoOptScratch) }}

func getTwoOptScratch(n, kk, classes int) *twoOptScratch {
	sc := twoOptPool.Get().(*twoOptScratch)
	if cap(sc.pos) < n {
		sc.pos = make([]int32, n)
		sc.queue = make([]int32, n)
		sc.inQueue = make([]bool, n)
		sc.dontLook = make([]bool, n)
	}
	sc.pos = sc.pos[:n]
	sc.queue = sc.queue[:n]
	sc.inQueue = sc.inQueue[:n]
	sc.dontLook = sc.dontLook[:n]
	if nb := classes * kk; cap(sc.bucket) < nb {
		sc.bucket = make([]int32, nb)
	}
	if cap(sc.nbr) < n*kk {
		sc.nbr = make([]int32, n*kk)
	}
	sc.nbr = sc.nbr[:n*kk]
	if cap(sc.start) < classes+1 {
		sc.start = make([]int32, classes+1)
	}
	sc.start = sc.start[:classes+1]
	return sc
}

func putTwoOptScratch(sc *twoOptScratch) { twoOptPool.Put(sc) }

// segScratch backs the segment-rebuilding moves (Or-opt relocation,
// double-bridge kicks, 3-opt reconnection): one n-sized rebuild buffer and
// two small segment buffers.
type segScratch struct {
	rest []int
	segB []int
	segC []int
}

var segPool = sync.Pool{New: func() any { return new(segScratch) }}

func getSegScratch(n int) *segScratch {
	sc := segPool.Get().(*segScratch)
	if cap(sc.rest) < n {
		sc.rest = make([]int, n)
		sc.segB = make([]int, n)
		sc.segC = make([]int, n)
	}
	sc.rest = sc.rest[:n]
	sc.segB = sc.segB[:n]
	sc.segC = sc.segC[:n]
	return sc
}

func putSegScratch(sc *segScratch) { segPool.Put(sc) }

// visitedScratch backs nearest-neighbor construction.
type visitedScratch struct{ visited []bool }

var visitedPool = sync.Pool{New: func() any { return new(visitedScratch) }}

func getVisited(n int) *visitedScratch {
	sc := visitedPool.Get().(*visitedScratch)
	if cap(sc.visited) < n {
		sc.visited = make([]bool, n)
	}
	sc.visited = sc.visited[:n]
	for i := range sc.visited {
		sc.visited[i] = false
	}
	return sc
}

func putVisited(sc *visitedScratch) { visitedPool.Put(sc) }

// greedyEdge is the edge record of GreedyEdgePath's sweep. uv packs
// (u << 32) | v so the (weight, u, v) tie-break is a two-field compare.
type greedyEdge struct {
	w  int64
	uv uint64
}

func (e greedyEdge) split() (u, v int) { return int(e.uv >> 32), int(uint32(e.uv)) }

func packUV(u, v int) uint64 { return uint64(u)<<32 | uint64(uint32(v)) }

// greedyScratch backs GreedyEdgePath: the edge list (n(n-1)/2 entries, by
// far the largest heuristic allocation), degree counters, path adjacency,
// and counting-sort offsets for compact instances.
type greedyScratch struct {
	edges []greedyEdge
	deg   []int8
	adj   [][2]int32
	cnt   []int32
	d     dsu.DSU
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

func getGreedyScratch(n, classes int) *greedyScratch {
	sc := greedyPool.Get().(*greedyScratch)
	ne := n * (n - 1) / 2
	if cap(sc.edges) < ne {
		sc.edges = make([]greedyEdge, ne)
	}
	sc.edges = sc.edges[:ne]
	if cap(sc.deg) < n {
		sc.deg = make([]int8, n)
		sc.adj = make([][2]int32, n)
	}
	sc.deg = sc.deg[:n]
	sc.adj = sc.adj[:n]
	for i := 0; i < n; i++ {
		sc.deg[i] = 0
		sc.adj[i] = [2]int32{-1, -1}
	}
	if cap(sc.cnt) < classes+1 {
		sc.cnt = make([]int32, classes+1)
	}
	sc.cnt = sc.cnt[:classes+1]
	for i := range sc.cnt {
		sc.cnt[i] = 0
	}
	sc.d.Reset(n)
	return sc
}

func putGreedyScratch(sc *greedyScratch) { greedyPool.Put(sc) }

// hkScratch backs the Held–Karp DP: the dp/parent tables (the dominant
// allocation of exact solves, ~2^n·n·5 bytes), the int32 weight matrix,
// and the per-layer mask list. Pooling these is what makes steady-state
// exact batch solving allocation-free; the pool is GC-clearable, so a
// one-off large solve does not pin its tables forever.
type hkScratch struct {
	dp    []int32
	par   []int8
	w32   []int32
	masks []int
}

var hkPool = sync.Pool{New: func() any { return new(hkScratch) }}

func getHKScratch(size, n int) *hkScratch {
	sc := hkPool.Get().(*hkScratch)
	if cap(sc.dp) < size*n {
		sc.dp = make([]int32, size*n)
		sc.par = make([]int8, size*n)
	}
	sc.dp = sc.dp[:size*n]
	sc.par = sc.par[:size*n]
	if cap(sc.w32) < n*n {
		sc.w32 = make([]int32, n*n)
	}
	sc.w32 = sc.w32[:n*n]
	if sc.masks == nil {
		sc.masks = make([]int, 0, 1<<16)
	}
	return sc
}

func putHKScratch(sc *hkScratch) { hkPool.Put(sc) }
