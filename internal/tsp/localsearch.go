package tsp

import "context"

// Local-search moves for the PATH objective. These are the inner moves of
// the chained heuristic engine (linkern.go), standing in for the
// Lin–Kernighan implementations (Concorde, LKH) the paper suggests using
// as practical engines. Each move family exposes a context-free form that
// runs to a local optimum and a context form that additionally checks for
// cancellation between sweeps, so a deadline interrupts the descent at a
// consistent (always-valid) tour.

// TwoOptPath improves the tour in place with first-improvement 2-opt
// sweeps (segment reversal) until a local optimum. Returns the cost delta
// applied (≤ 0).
func TwoOptPath(ins *Instance, t Tour) int64 {
	d, _ := twoOptPath(context.Background(), ins, t)
	return d
}

// twoOptPath is TwoOptPath with a cancellation checkpoint between sweeps
// (the tour is always left in a valid state). It reports, along with the applied delta, whether the descent
// ran to a local optimum (false means it was cut short by ctx).
func twoOptPath(ctx context.Context, ins *Instance, t Tour) (int64, bool) {
	n := len(t)
	var total int64
	if n < 3 {
		return 0, true
	}
	improved := true
	for improved {
		if canceled(ctx) {
			return total, false
		}
		improved = false
		for i := 0; i < n-1; i++ {
			var prev int
			hasPrev := i > 0
			if hasPrev {
				prev = t[i-1]
			}
			for j := i + 1; j < n; j++ {
				var next int
				hasNext := j < n-1
				if hasNext {
					next = t[j+1]
				}
				var delta int64
				if hasPrev {
					delta += ins.Weight(prev, t[j]) - ins.Weight(prev, t[i])
				}
				if hasNext {
					delta += ins.Weight(t[i], next) - ins.Weight(t[j], next)
				}
				if delta < 0 {
					reverseSeg(t, i, j)
					total += delta
					improved = true
					if hasPrev {
						prev = t[i-1]
					}
				}
			}
		}
	}
	return total, true
}

// OrOptPath improves the tour in place by relocating segments of length
// 1..3 (optionally reversed) to better positions, first-improvement, until
// a local optimum. Returns the cost delta applied (≤ 0).
func OrOptPath(ins *Instance, t Tour) int64 {
	d, _ := orOptPath(context.Background(), ins, t)
	return d
}

// orOptPath is OrOptPath with a cancellation checkpoint between sweeps. It
// reports, along with the applied delta, whether the descent ran to a
// local optimum (false means it was cut short by ctx). The segment rebuild
// buffer is pooled, so applying moves allocates nothing.
func orOptPath(ctx context.Context, ins *Instance, t Tour) (int64, bool) {
	n := len(t)
	var total int64
	if n < 3 {
		return 0, true
	}
	sc := getSegScratch(n)
	defer putSegScratch(sc)
	improved := true
	for improved {
		if canceled(ctx) {
			return total, false
		}
		improved = false
		for segLen := 1; segLen <= 3 && segLen < n; segLen++ {
			for i := 0; i+segLen <= n; i++ {
				d, pos, rev := bestRelocation(ins, t, i, segLen)
				if d < 0 {
					applyRelocation(t, i, segLen, pos, rev, sc.rest)
					total += d
					improved = true
				}
			}
		}
	}
	return total, true
}

// applyRelocation moves t[i:i+L] (reversed when rev) to rest-position pos,
// where rest-coordinates index t with the segment removed. rest is an
// n-sized scratch buffer.
func applyRelocation(t Tour, i, L, pos int, rev bool, rest []int) {
	j := i + L
	var seg [3]int // L ≤ 3 by orOptPath's sweep bounds
	copy(seg[:L], t[i:j])
	if rev {
		for a, b := 0, L-1; a < b; a, b = a+1, b-1 {
			seg[a], seg[b] = seg[b], seg[a]
		}
	}
	rest = rest[:0]
	rest = append(rest, t[:i]...)
	rest = append(rest, t[j:]...)
	out := t[:0]
	out = append(out, rest[:pos]...)
	out = append(out, seg[:L]...)
	out = append(out, rest[pos:]...)
}

// bestRelocation evaluates moving t[i:i+L] to every other gap position,
// forward or reversed, and returns the best improving delta with the
// rest-position and orientation to pass to applyRelocation (pos = -1 when
// no improving move exists).
func bestRelocation(ins *Instance, t Tour, i, L int) (int64, int, bool) {
	n := len(t)
	j := i + L // segment is t[i:j]
	segFirst, segLast := t[i], t[j-1]

	// Cost of removing the segment.
	var removeGain int64
	hasPrev, hasNext := i > 0, j < n
	switch {
	case hasPrev && hasNext:
		removeGain = ins.Weight(t[i-1], segFirst) + ins.Weight(segLast, t[j]) - ins.Weight(t[i-1], t[j])
	case hasPrev:
		removeGain = ins.Weight(t[i-1], segFirst)
	case hasNext:
		removeGain = ins.Weight(segLast, t[j])
	default:
		return 0, -1, false // segment is the whole tour
	}

	bestDelta := int64(0)
	bestPos, bestRev := -1, false
	// Insert between rest[k-1] and rest[k] where rest = t without segment.
	// Positions are expressed in rest-coordinates 0..n-L.
	restLen := n - L
	restAt := func(k int) int {
		if k < i {
			return t[k]
		}
		return t[k+L]
	}
	for k := 0; k <= restLen; k++ {
		if k == i {
			continue // original position
		}
		var before, after int
		hasBefore, hasAfter := k > 0, k < restLen
		if hasBefore {
			before = restAt(k - 1)
		}
		if hasAfter {
			after = restAt(k)
		}
		var base int64
		if hasBefore && hasAfter {
			base = ins.Weight(before, after)
		}
		for _, rev := range [2]bool{false, true} {
			first, last := segFirst, segLast
			if rev {
				first, last = last, first
			}
			var addCost int64
			if hasBefore {
				addCost += ins.Weight(before, first)
			}
			if hasAfter {
				addCost += ins.Weight(last, after)
			}
			delta := addCost - base - removeGain
			if delta < bestDelta {
				bestDelta = delta
				bestPos, bestRev = k, rev
			}
		}
	}
	return bestDelta, bestPos, bestRev
}

func reverseSeg(t Tour, i, j int) {
	for i < j {
		t[i], t[j] = t[j], t[i]
		i++
		j--
	}
}
