// Package modular computes the two graph parameters the paper's FPT
// results revolve around: neighborhood diversity (nd) and modular-width
// (mw), together with the modular decomposition tree the latter needs.
//
// Definitions (paper, §II-B): a module M is a vertex set whose members all
// have the same neighborhood outside M. nd(G) is the minimum number of
// classes of a partition into modules that are cliques or independent sets
// with identical outside-neighborhoods ("types"); mw(G) is the minimum ℓ
// such that G has ≤ ℓ vertices or a partition into ≤ ℓ modules whose
// induced subgraphs recursively have modular-width ≤ ℓ. mw equals the
// maximum number of children of a prime node in the modular decomposition
// tree (and 2 if there is no prime node, matching the paper's ℓ ≥ 2
// convention).
package modular

import (
	"sort"

	"lpltsp/internal/graph"
)

// NDPartition is a partition of V into neighborhood-diversity classes.
type NDPartition struct {
	// Classes lists the vertex sets; each is a clique or an independent
	// set, and members of a class have identical neighborhoods outside it.
	Classes [][]int
	// ClassOf maps each vertex to its class index.
	ClassOf []int
	// IsClique[i] reports whether class i induces a clique (singleton
	// classes count as cliques).
	IsClique []bool
}

// ND returns nd(G) and the corresponding type partition. Two vertices u,v
// are in the same class iff N(u)\{v} = N(v)\{u}, i.e. they are twins
// (false twins: N(u)=N(v); true twins: N[u]=N[v]). O(n²+nm).
func ND(g *graph.Graph) (int, *NDPartition) {
	n := g.N()
	p := &NDPartition{ClassOf: make([]int, n)}
	if n == 0 {
		return 0, p
	}
	assigned := make([]bool, n)
	for v := 0; v < n; v++ {
		if assigned[v] {
			continue
		}
		// Gather all twins of v (including v).
		cls := []int{v}
		for u := v + 1; u < n; u++ {
			if assigned[u] {
				continue
			}
			if twins(g, u, v) {
				cls = append(cls, u)
			}
		}
		idx := len(p.Classes)
		for _, u := range cls {
			assigned[u] = true
			p.ClassOf[u] = idx
		}
		p.Classes = append(p.Classes, cls)
		clique := true
		if len(cls) > 1 {
			clique = g.HasEdge(cls[0], cls[1])
		}
		p.IsClique = append(p.IsClique, clique)
	}
	return len(p.Classes), p
}

// twins reports whether u and v satisfy N(u)\{v} = N(v)\{u}.
func twins(g *graph.Graph, u, v int) bool {
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	// Compare ignoring u,v themselves.
	i, j := 0, 0
	for {
		for i < len(nu) && (int(nu[i]) == u || int(nu[i]) == v) {
			i++
		}
		for j < len(nv) && (int(nv[j]) == u || int(nv[j]) == v) {
			j++
		}
		if i == len(nu) || j == len(nv) {
			return i == len(nu) && j == len(nv)
		}
		if nu[i] != nv[j] {
			return false
		}
		i++
		j++
	}
}

// NodeKind labels modular decomposition tree nodes.
type NodeKind int

const (
	// Leaf is a single vertex.
	Leaf NodeKind = iota
	// Parallel nodes join disconnected parts (quotient is edgeless).
	Parallel
	// Series nodes join co-disconnected parts (quotient is complete).
	Series
	// Prime nodes have an indecomposable quotient.
	Prime
)

func (k NodeKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Parallel:
		return "parallel"
	case Series:
		return "series"
	case Prime:
		return "prime"
	}
	return "?"
}

// MDNode is a node of the modular decomposition tree.
type MDNode struct {
	Kind     NodeKind
	Vertices []int // vertices of the module (sorted)
	Children []*MDNode
}

// Decompose computes the modular decomposition tree of g. The
// implementation is the straightforward O(n³·m)-ish recursive algorithm
// (components / co-components / prime children via pair-closure), which is
// exact; the linear-time algorithm of Tedder et al. the paper cites is a
// performance substitution only (see DESIGN.md §4).
func Decompose(g *graph.Graph) *MDNode {
	vs := make([]int, g.N())
	for i := range vs {
		vs[i] = i
	}
	return decompose(g, vs)
}

// decompose builds the MD tree of g restricted to vs (vs sorted).
func decompose(g *graph.Graph, vs []int) *MDNode {
	node := &MDNode{Vertices: vs}
	if len(vs) == 1 {
		node.Kind = Leaf
		return node
	}
	sub := g.InducedSubgraph(vs) // local indices 0..len(vs)-1
	if comps := sub.ConnectedComponents(); len(comps) > 1 {
		node.Kind = Parallel
		for _, c := range comps {
			node.Children = append(node.Children, decompose(g, mapBack(vs, c)))
		}
		return node
	}
	if coComps := sub.Complement().ConnectedComponents(); len(coComps) > 1 {
		node.Kind = Series
		for _, c := range coComps {
			node.Children = append(node.Children, decompose(g, mapBack(vs, c)))
		}
		return node
	}
	// Prime: children are the maximal proper strong modules; in the prime
	// case x,y share a child iff the module closure of {x,y} is proper.
	node.Kind = Prime
	n := len(vs)
	childOf := make([]int, n)
	for i := range childOf {
		childOf[i] = -1
	}
	var children [][]int
	for x := 0; x < n; x++ {
		if childOf[x] >= 0 {
			continue
		}
		cls := []int{x}
		childOf[x] = len(children)
		for y := x + 1; y < n; y++ {
			if childOf[y] >= 0 {
				continue
			}
			if len(moduleClosure(sub, x, y)) < n {
				childOf[y] = len(children)
				cls = append(cls, y)
			}
		}
		children = append(children, cls)
	}
	for _, c := range children {
		node.Children = append(node.Children, decompose(g, mapBack(vs, c)))
	}
	return node
}

// moduleClosure returns the smallest module of g containing {x,y}: start
// with {x,y} and repeatedly add any vertex that distinguishes a pair
// inside (is adjacent to one but not the other).
func moduleClosure(g *graph.Graph, x, y int) []int {
	n := g.N()
	in := make([]bool, n)
	in[x], in[y] = true, true
	members := []int{x, y}
	changed := true
	for changed {
		changed = false
		for w := 0; w < n; w++ {
			if in[w] {
				continue
			}
			// w distinguishes the module if it is adjacent to some but
			// not all members.
			adjCount := 0
			for _, m := range members {
				if g.HasEdge(w, m) {
					adjCount++
				}
			}
			if adjCount != 0 && adjCount != len(members) {
				in[w] = true
				members = append(members, w)
				changed = true
			}
		}
	}
	sort.Ints(members)
	return members
}

func mapBack(vs []int, local []int) []int {
	out := make([]int, len(local))
	for i, x := range local {
		out[i] = vs[x]
	}
	sort.Ints(out)
	return out
}

// Width returns mw(G): the maximum number of children over prime nodes of
// the decomposition tree, at least 2 for any graph with ≥ 2 vertices
// (series/parallel nodes can always be regrouped into two modules), and
// 1 for trivial graphs.
func Width(g *graph.Graph) int {
	if g.N() <= 1 {
		return g.N()
	}
	w := 2
	var walk func(nd *MDNode)
	walk = func(nd *MDNode) {
		if nd.Kind == Prime && len(nd.Children) > w {
			w = len(nd.Children)
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(Decompose(g))
	return w
}
