package modular

import (
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

func TestNDClassics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		nd   int
	}{
		{"K5", graph.Complete(5), 1},
		{"empty4", graph.New(4), 1},
		{"star6", graph.Star(6), 2}, // hub vs leaves
		{"K33", graph.CompleteMultipartite(3, 3), 2},
		{"K2_3_1", graph.CompleteMultipartite(2, 3, 1), 3},
		{"P4", graph.Path(4), 4}, // all singleton types
		{"C5", graph.Cycle(5), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nd, part := ND(tc.g)
			if nd != tc.nd {
				t.Fatalf("nd = %d, want %d", nd, tc.nd)
			}
			checkPartition(t, tc.g, part)
		})
	}
}

// checkPartition verifies the defining property of the nd partition:
// classes are cliques or independent sets of twins.
func checkPartition(t *testing.T, g *graph.Graph, p *NDPartition) {
	t.Helper()
	covered := 0
	for ci, cls := range p.Classes {
		covered += len(cls)
		for i := 0; i < len(cls); i++ {
			if p.ClassOf[cls[i]] != ci {
				t.Fatalf("ClassOf inconsistent for %d", cls[i])
			}
			for j := i + 1; j < len(cls); j++ {
				u, v := cls[i], cls[j]
				if g.HasEdge(u, v) != p.IsClique[ci] {
					t.Fatalf("class %d: edge (%d,%d)=%v but IsClique=%v",
						ci, u, v, g.HasEdge(u, v), p.IsClique[ci])
				}
				if !twins(g, u, v) {
					t.Fatalf("class %d: %d and %d are not twins", ci, u, v)
				}
			}
		}
	}
	if covered != g.N() {
		t.Fatalf("partition covers %d of %d vertices", covered, g.N())
	}
}

func TestNDRandomNDGraphRespectsBound(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		ell := 2 + r.Intn(5)
		sizes := make([]int, ell)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(4)
		}
		g := graph.RandomNDGraph(r, sizes, 0.5, 0.5)
		nd, part := ND(g)
		if nd > ell {
			t.Fatalf("trial %d: nd = %d > construction bound %d", trial, nd, ell)
		}
		checkPartition(t, g, part)
	}
}

func TestDecomposeKinds(t *testing.T) {
	// Disconnected → parallel root.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if root := Decompose(g); root.Kind != Parallel || len(root.Children) != 2 {
		t.Fatalf("parallel root expected, got %v with %d children", root.Kind, len(root.Children))
	}
	// Complete → series root.
	if root := Decompose(graph.Complete(4)); root.Kind != Series {
		t.Fatalf("series root expected, got %v", root.Kind)
	}
	// P4 → prime root with 4 leaf children.
	if root := Decompose(graph.Path(4)); root.Kind != Prime || len(root.Children) != 4 {
		t.Fatalf("P4: got %v with %d children", root.Kind, len(root.Children))
	}
	// Single vertex → leaf.
	if root := Decompose(graph.New(1)); root.Kind != Leaf {
		t.Fatalf("leaf expected, got %v", root.Kind)
	}
}

func TestDecomposeNontrivialModule(t *testing.T) {
	// P4 with vertex 3 replaced by a true-twin pair {3,4}: {3,4} is a
	// module; the quotient is prime P4 with a non-leaf child.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	root := Decompose(g)
	if root.Kind != Prime || len(root.Children) != 4 {
		t.Fatalf("got %v with %d children", root.Kind, len(root.Children))
	}
	foundPair := false
	for _, c := range root.Children {
		if len(c.Vertices) == 2 {
			foundPair = true
			if c.Vertices[0] != 3 || c.Vertices[1] != 4 {
				t.Fatalf("wrong module: %v", c.Vertices)
			}
			if c.Kind != Series {
				t.Fatalf("twin pair should be a series node, got %v", c.Kind)
			}
		}
	}
	if !foundPair {
		t.Fatal("module {3,4} not found")
	}
}

func TestWidthClassics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		mw   int
	}{
		{"K6", graph.Complete(6), 2}, // cograph
		{"empty5", graph.New(5), 2},  // cograph
		{"star7", graph.Star(7), 2},  // cograph
		{"P4", graph.Path(4), 4},     // prime on 4 vertices
		{"P6", graph.Path(6), 6},     // prime
		{"C5", graph.Cycle(5), 5},    // prime
		{"C6", graph.Cycle(6), 6},    // prime
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Width(tc.g); got != tc.mw {
				t.Fatalf("mw = %d, want %d", got, tc.mw)
			}
		})
	}
}

func TestCographWidth2(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomCograph(r, 2+r.Intn(15))
		if w := Width(g); w != 2 {
			t.Fatalf("cograph mw = %d, want 2", w)
		}
	}
}

// TestProposition1: mw(G) = mw(Ḡ).
func TestProposition1(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		g := graph.GNP(r, 2+r.Intn(12), 0.4)
		if mwG, mwC := Width(g), Width(g.Complement()); mwG != mwC {
			t.Fatalf("trial %d: mw(G)=%d, mw(Ḡ)=%d", trial, mwG, mwC)
		}
	}
}

// TestProposition2: nd(G²) ≤ mw(G) for connected G.
func TestProposition2(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(r, 2+r.Intn(12), 0.3)
		nd2, _ := ND(g.Power(2))
		if mw := Width(g); nd2 > mw {
			t.Fatalf("trial %d: nd(G²)=%d > mw(G)=%d", trial, nd2, mw)
		}
	}
}

// TestNDMonotoneUnderPowers: nd(G) ≥ nd(Gᵏ) (cited from Fiala et al.).
func TestNDMonotoneUnderPowers(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(r, 2+r.Intn(12), 0.3)
		nd1, _ := ND(g)
		for k := 2; k <= 4; k++ {
			ndk, _ := ND(g.Power(k))
			if ndk > nd1 {
				t.Fatalf("trial %d: nd(G^%d)=%d > nd(G)=%d", trial, k, ndk, nd1)
			}
		}
	}
}

func TestModuleClosure(t *testing.T) {
	// In P4 = 0-1-2-3, the closure of {1,2} is everything (prime), and
	// closure of a twin pair stays small.
	p4 := graph.Path(4)
	if got := moduleClosure(p4, 1, 2); len(got) != 4 {
		t.Fatalf("closure of {1,2} in P4: %v", got)
	}
	g := graph.New(4) // star with twin leaves
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if got := moduleClosure(g, 1, 2); len(got) != 2 {
		t.Fatalf("closure of twin leaves: %v", got)
	}
}
