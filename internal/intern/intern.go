// Package intern holds the graph intern store behind lplserve's
// /v1/graphs endpoint: a bounded, sharded LRU keyed by the graph's
// 128-bit structural fingerprint. A client submits a graph once, gets
// its ref back, and every later /v1/solve or /v1/batch request that
// names the ref skips body parsing, graph construction, and fingerprint
// hashing entirely — the stored *graph.Graph is handed out as-is.
//
// That hand-out is safe because Put normalizes the graph and forces its
// derived views (CSR layout, fingerprint memo) before the graph becomes
// visible to any other goroutine: from then on every operation a solve
// performs on it is a pure read, so one interned graph can back any
// number of concurrent solves without copying. Callers must not mutate
// a graph obtained from Get.
//
// The shard geometry matches the solve cache in internal/core: 2^4
// independently locked LRU shards with per-shard quotas, collapsing to
// one shard for budgets smaller than the shard count, and stats that
// lock all shards before reading any counter so snapshots are
// internally consistent.
package intern

import (
	"container/list"
	"strconv"
	"sync"

	"lpltsp/internal/graph"
)

// DefaultCapacity is the default entry budget of a store. An entry is
// one normalized graph (O(n+m) int32s), so the footprint is linear in
// the interned instances' sizes.
const DefaultCapacity = 1024

const (
	shardBits  = 4
	shardCount = 1 << shardBits
)

// Store is a bounded, sharded LRU of interned graphs keyed by
// fingerprint ref. The zero value is not usable; call NewStore.
type Store struct {
	shards []*shard
	mask   uint64
	cap    int
}

type shard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element

	puts, dups, hits, misses, evictions int64
}

type entry struct {
	ref string
	g   *graph.Graph
}

// NewStore returns a store with the given total entry budget, divided
// across the LRU shards (per-shard eviction keeps the total within
// capacity). Capacity ≤ 0 disables interning: Put still returns refs
// (the fingerprint is a pure function of the graph) but nothing is
// retained, so every Get misses.
func NewStore(capacity int) *Store {
	shards := shardCount
	if capacity < shardCount {
		shards = 1
	}
	s := &Store{shards: make([]*shard, shards), mask: uint64(shards - 1), cap: capacity}
	base, rem := 0, 0
	if capacity > 0 {
		base, rem = capacity/shards, capacity%shards
	}
	for i := range s.shards {
		sc := base
		if i < rem {
			sc++
		}
		s.shards[i] = &shard{cap: sc, ll: list.New(), entries: map[string]*list.Element{}}
	}
	return s
}

// Ref is the wire form of a graph's identity: the 128-bit structural
// fingerprint as 32 lowercase hex digits. Equal graphs (same n, same
// normalized adjacency) always produce the same ref.
func Ref(g *graph.Graph) string {
	h1, h2 := g.Fingerprint()
	var b [32]byte
	hex16(b[:16], h1)
	hex16(b[16:], h2)
	return string(b[:])
}

func hex16(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// ValidRef reports whether ref has the shape Put returns: exactly 32
// lowercase hex digits. Malformed refs can be rejected as bad requests
// before touching the store.
func ValidRef(ref string) bool {
	if len(ref) != 32 {
		return false
	}
	for i := 0; i < len(ref); i++ {
		c := ref[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func fnvKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

func (s *Store) shard(ref string) *shard {
	return s.shards[fnvKey(ref)&s.mask]
}

// Put interns g and returns its ref. The graph is normalized and its
// CSR view and fingerprint are forced here, before publication, so
// readers obtained via Get never race a lazy build. Put is idempotent:
// re-interning an equal graph returns the same ref, refreshes its LRU
// position, and keeps the first stored copy.
func (s *Store) Put(g *graph.Graph) string {
	g.Normalize()
	_ = g.MaxDegree() // force the lazy CSR view pre-publication
	ref := Ref(g)     // forces the fingerprint memo
	sh := s.shard(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.puts++
	if el, ok := sh.entries[ref]; ok {
		sh.dups++
		sh.ll.MoveToFront(el)
		return ref
	}
	if sh.cap <= 0 {
		return ref
	}
	sh.entries[ref] = sh.ll.PushFront(&entry{ref: ref, g: g})
	for sh.ll.Len() > sh.cap {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.entries, back.Value.(*entry).ref)
		sh.evictions++
	}
	return ref
}

// Get returns the interned graph for ref, or (nil, false) if it was
// never interned or has been evicted. The returned graph is shared and
// must be treated as read-only.
func (s *Store) Get(ref string) (*graph.Graph, bool) {
	sh := s.shard(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[ref]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.ll.MoveToFront(el)
	return el.Value.(*entry).g, true
}

// Len returns the current number of interned graphs.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats is a consistent snapshot of a store's counters. Puts counts
// every Put call; Reinterned is the subset that found the graph already
// present. Hits/Misses count Get outcomes.
type Stats struct {
	Entries    int64 `json:"entries"`
	Capacity   int64 `json:"capacity"`
	Puts       int64 `json:"puts"`
	Reinterned int64 `json:"reinterned"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

// Stats locks every shard before reading any counter, so the snapshot
// can never mix counts from different moments.
func (s *Store) Stats() Stats {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	st := Stats{Capacity: int64(s.cap)}
	for _, sh := range s.shards {
		st.Entries += int64(sh.ll.Len())
		st.Puts += sh.puts
		st.Reinterned += sh.dups
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	return st
}

// String renders a ref-like debug identity for error messages.
func (st Stats) String() string {
	return "intern{entries=" + strconv.FormatInt(st.Entries, 10) +
		"/" + strconv.FormatInt(st.Capacity, 10) +
		" hits=" + strconv.FormatInt(st.Hits, 10) +
		" misses=" + strconv.FormatInt(st.Misses, 10) +
		" evictions=" + strconv.FormatInt(st.Evictions, 10) + "}"
}
