package intern

import (
	"fmt"
	"sync"
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore(8)
	g := graph.Cycle(5)
	ref := s.Put(g)
	if !ValidRef(ref) {
		t.Fatalf("Put returned malformed ref %q", ref)
	}
	got, ok := s.Get(ref)
	if !ok {
		t.Fatal("interned graph not found")
	}
	if got != g {
		t.Fatal("Get must return the stored graph, not a copy")
	}
	if _, ok := s.Get("00000000000000000000000000000000"); ok {
		t.Fatal("unknown ref resolved")
	}
}

func TestPutIdempotent(t *testing.T) {
	s := NewStore(8)
	ref1 := s.Put(graph.Cycle(6))
	ref2 := s.Put(graph.Cycle(6)) // equal graph, distinct object
	if ref1 != ref2 {
		t.Fatalf("equal graphs got different refs: %s vs %s", ref1, ref2)
	}
	if s.Len() != 1 {
		t.Fatalf("re-intern grew the store to %d entries", s.Len())
	}
	st := s.Stats()
	if st.Puts != 2 || st.Reinterned != 1 {
		t.Fatalf("puts=%d reinterned=%d, want 2/1", st.Puts, st.Reinterned)
	}
}

func TestRefIsStructural(t *testing.T) {
	// Same structure built in different edge orders → same ref.
	a := graph.New(4)
	a.AddEdge(0, 1)
	a.AddEdge(2, 3)
	b := graph.New(4)
	b.AddEdge(3, 2)
	b.AddEdge(1, 0)
	if Ref(a) != Ref(b) {
		t.Fatal("edge order changed the ref")
	}
	if Ref(graph.Path(4)) == Ref(graph.Cycle(4)) {
		t.Fatal("distinct graphs share a ref")
	}
}

func TestEvictionLRU(t *testing.T) {
	// Capacity below the shard count collapses to one shard, giving exact
	// classic LRU semantics to pin.
	s := NewStore(3)
	r := rng.New(1)
	refs := make([]string, 5)
	for i := range refs {
		refs[i] = s.Put(graph.RandomSmallDiameter(r, 10+i, 3, 0.2))
	}
	if s.Len() != 3 {
		t.Fatalf("len=%d, want capacity 3", s.Len())
	}
	if _, ok := s.Get(refs[0]); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := s.Get(refs[4]); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touch refs[2], then push one more: refs[3] should fall, not refs[2].
	if _, ok := s.Get(refs[2]); !ok {
		t.Fatal("refs[2] missing before touch test")
	}
	s.Put(graph.RandomSmallDiameter(r, 40, 3, 0.2))
	if _, ok := s.Get(refs[2]); !ok {
		t.Fatal("recently touched entry evicted")
	}
	if _, ok := s.Get(refs[3]); ok {
		t.Fatal("LRU order ignored the Get touch")
	}
	if ev := s.Stats().Evictions; ev != 3 {
		t.Fatalf("evictions=%d, want 3", ev)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	s := NewStore(0)
	ref := s.Put(graph.Cycle(4))
	if !ValidRef(ref) {
		t.Fatal("disabled store must still return valid refs")
	}
	if _, ok := s.Get(ref); ok {
		t.Fatal("disabled store retained a graph")
	}
	if s.Len() != 0 {
		t.Fatal("disabled store has entries")
	}
}

func TestShardedCapacityBound(t *testing.T) {
	const capacity = 64
	s := NewStore(capacity)
	r := rng.New(3)
	for i := 0; i < 4*capacity; i++ {
		s.Put(graph.RandomSmallDiameter(r, 8+i%50, 3, 0.3))
	}
	if n := s.Len(); n > capacity {
		t.Fatalf("store holds %d entries, budget is %d", n, capacity)
	}
	st := s.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("stats entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
}

func TestValidRef(t *testing.T) {
	good := Ref(graph.Cycle(3))
	if !ValidRef(good) {
		t.Fatalf("real ref %q rejected", good)
	}
	for _, bad := range []string{
		"", "xyz", good[:31], good + "0",
		"ABCDEF00112233445566778899AABBCC", // uppercase
		"0123456789abcdef0123456789abcdeg", // non-hex
	} {
		if ValidRef(bad) {
			t.Errorf("ValidRef(%q) = true", bad)
		}
	}
}

// TestStoreConcurrentPutGet is pinned in CI's -race step: interleaved
// Put/Get/Stats across goroutines must be race-clean, and graphs read
// through Get must be safely usable (fingerprint, CSR traversal)
// without synchronization.
func TestStoreConcurrentPutGet(t *testing.T) {
	s := NewStore(32)
	var wg sync.WaitGroup
	refs := make([]string, 16)
	for i := range refs {
		refs[i] = s.Put(graph.RandomSmallDiameter(rng.New(uint64(i+1)), 20+i, 3, 0.2))
	}
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.New(uint64(100 + w))
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					s.Put(graph.RandomSmallDiameter(r, 10+i%30, 3, 0.2))
				case 1:
					if g, ok := s.Get(refs[i%len(refs)]); ok {
						// Exercise the shared read-only surface.
						_, _ = g.Fingerprint()
						_ = g.MaxDegree()
						if g.N() > 1 {
							_ = g.Neighbors(0)
						}
					}
				case 2:
					_ = s.Stats()
				default:
					_ = s.Len()
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d after concurrent churn", st.Entries, st.Capacity)
	}
}

// TestStoreConcurrentSameGraph is pinned in CI's -race step: many
// goroutines interning equal graphs must agree on one ref with no race
// on the lazy derived views.
func TestStoreConcurrentSameGraph(t *testing.T) {
	s := NewStore(8)
	var wg sync.WaitGroup
	out := make([]string, 16)
	for i := range out {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = s.Put(graph.Complete(7))
		}()
	}
	wg.Wait()
	for _, ref := range out[1:] {
		if ref != out[0] {
			t.Fatalf("refs diverged: %v", out)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("len=%d after interning one structure", s.Len())
	}
}

func TestStatsSnapshotConsistent(t *testing.T) {
	s := NewStore(4)
	ref := s.Put(graph.Path(3))
	s.Get(ref)
	s.Get("ffffffffffffffffffffffffffffffff")
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func BenchmarkStorePut(b *testing.B) {
	s := NewStore(DefaultCapacity)
	gs := make([]*graph.Graph, 64)
	r := rng.New(9)
	for i := range gs {
		gs[i] = graph.RandomSmallDiameter(r, 64, 3, 0.1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(gs[i%len(gs)])
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(DefaultCapacity)
	refs := make([]string, 64)
	r := rng.New(9)
	for i := range refs {
		refs[i] = s.Put(graph.RandomSmallDiameter(r, 64, 3, 0.1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(refs[i%len(refs)]); !ok {
			b.Fatal("miss")
		}
	}
}

func ExampleStore() {
	s := NewStore(16)
	ref := s.Put(graph.Cycle(4))
	g, ok := s.Get(ref)
	fmt.Println(ok, g.N(), g.M())
	// Output: true 4 4
}
