package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Network-level fault injection for the cluster transport. Where
// Injector faults *inside* a node (panics, stalls, alloc spikes), the
// NetInjector faults the wire *between* nodes: a FaultyDoer wraps any
// cluster transport (anything with Do) and, per the same seeded
// per-(site, visit) draw as Injector, drops the request, delays it,
// blackholes it until the caller's context gives up, or answers with a
// synthesized gateway 503 without ever reaching the backend. Sites are
// conventionally named "net.<backend>", one per wrapped transport, so a
// plan can target a single link.
//
// Determinism contract (identical to Injector): visit v at site s fires
// iff splitmix64(seed ^ fnv(s) ^ (v·φ64)) maps under Rate, so two runs
// with the same seed fault the same visits in the same way regardless
// of goroutine interleaving.

// NetKind is one network fault flavor.
type NetKind uint8

const (
	// NetDrop fails the request immediately with a transport error — a
	// refused connection.
	NetDrop NetKind = iota
	// NetDelay holds the request for the plan's Delay (honoring the
	// request context) and then forwards it — a slow link.
	NetDelay
	// NetBlackhole never forwards and never answers: it waits for the
	// request's context to give up (bounded by BlackholeMax so a
	// context-less request cannot wedge), then returns the context
	// error — a gray failure only per-attempt timeouts can handle.
	NetBlackhole
	// NetFlaky5xx answers 503 without reaching the backend — a sick
	// intermediary.
	NetFlaky5xx
	netKindCount
)

func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetBlackhole:
		return "blackhole"
	case NetFlaky5xx:
		return "flaky5xx"
	default:
		return fmt.Sprintf("NetKind(%d)", uint8(k))
	}
}

// Doer is the transport seam this package wraps. It is structurally
// identical to cluster.Doer (re-declared here so fault stays below
// cluster in the import graph).
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// NetPlan configures a NetInjector.
type NetPlan struct {
	// Seed makes the per-site fault sequence reproducible.
	Seed uint64
	// Rate is the per-request fault probability in [0,1] (default 0.01).
	Rate float64
	// Sites limits injection to these site names; empty means every site.
	Sites []string
	// Kinds limits the fault flavors drawn; empty means all of them.
	Kinds []NetKind
	// Delay is NetDelay's hold (default 20ms).
	Delay time.Duration
	// BlackholeMax bounds NetBlackhole for context-less requests
	// (default 2s).
	BlackholeMax time.Duration
}

func (p NetPlan) withDefaults() NetPlan {
	if p.Rate <= 0 {
		p.Rate = 0.01
	}
	if p.Rate > 1 {
		p.Rate = 1
	}
	if p.Delay <= 0 {
		p.Delay = 20 * time.Millisecond
	}
	if p.BlackholeMax <= 0 {
		p.BlackholeMax = 2 * time.Second
	}
	if len(p.Kinds) == 0 {
		p.Kinds = []NetKind{NetDrop, NetDelay, NetBlackhole, NetFlaky5xx}
	}
	return p
}

// Dropped is the transport error a NetDrop fault returns, so callers
// (and tests) can tell injected drops from real transport failures.
type Dropped struct {
	Site  string
	Visit uint64
}

func (d Dropped) Error() string {
	return fmt.Sprintf("fault: injected drop at %s (visit %d)", d.Site, d.Visit)
}

// NetInjector executes a NetPlan across any number of wrapped
// transports. Sites draw independent deterministic sequences exactly
// like Injector's.
type NetInjector struct {
	plan   NetPlan
	sites  map[string]bool // nil = all sites armed
	visits sync.Map        // site -> *atomic.Uint64 visit counter
	fired  [netKindCount]atomic.Int64
}

// NewNetInjector compiles a NetPlan.
func NewNetInjector(plan NetPlan) *NetInjector {
	inj := &NetInjector{plan: plan.withDefaults()}
	if len(plan.Sites) > 0 {
		inj.sites = make(map[string]bool, len(plan.Sites))
		for _, s := range plan.Sites {
			inj.sites[s] = true
		}
	}
	return inj
}

// Fired returns how many faults of each kind this injector executed.
func (inj *NetInjector) Fired() map[string]int64 {
	m := make(map[string]int64, netKindCount)
	for k := NetKind(0); k < netKindCount; k++ {
		if n := inj.fired[k].Load(); n > 0 {
			m[k.String()] = n
		}
	}
	return m
}

// visit draws the decision for one request through site. Unexported for
// determinism tests, mirroring Injector.visit.
func (inj *NetInjector) visit(site string) (NetKind, uint64, bool) {
	if inj.sites != nil && !inj.sites[site] {
		return 0, 0, false
	}
	cv, _ := inj.visits.LoadOrStore(site, new(atomic.Uint64))
	v := cv.(*atomic.Uint64).Add(1)
	h := splitmix64(inj.plan.Seed ^ fnvHash(site) ^ (v * 0x9e3779b97f4a7c15))
	u := float64(h>>11) / (1 << 53)
	if u >= inj.plan.Rate {
		return 0, v, false
	}
	k := inj.plan.Kinds[splitmix64(h)%uint64(len(inj.plan.Kinds))]
	return k, v, true
}

// Wrap returns a FaultyDoer injecting this plan's faults at the named
// site in front of next.
func (inj *NetInjector) Wrap(site string, next Doer) *FaultyDoer {
	return &FaultyDoer{site: site, inj: inj, next: next}
}

// FaultyDoer is one wrapped transport link. It implements Doer (and so
// cluster.Doer).
type FaultyDoer struct {
	site string
	inj  *NetInjector
	next Doer
}

// Do consults the injector for this request's visit and either executes
// the drawn fault or forwards to the wrapped transport.
func (fd *FaultyDoer) Do(req *http.Request) (*http.Response, error) {
	k, v, fire := fd.inj.visit(fd.site)
	if !fire {
		return fd.next.Do(req)
	}
	fd.inj.fired[k].Add(1)
	ctx := req.Context()
	switch k {
	case NetDrop:
		return nil, Dropped{Site: fd.site, Visit: v}
	case NetDelay:
		t := time.NewTimer(fd.inj.plan.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fd.next.Do(req)
	case NetBlackhole:
		t := time.NewTimer(fd.inj.plan.BlackholeMax)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
			return nil, fmt.Errorf("fault: blackhole at %s gave up after %v (visit %d)", fd.site, fd.inj.plan.BlackholeMax, v)
		}
	default: // NetFlaky5xx
		body := fmt.Sprintf(`{"error":"injected 503 at %s (visit %d)","code":"fault"}`+"\n", fd.site, v)
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
}
