package fault

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Named injection sites. Production code passes these to Visit; a chaos
// Plan selects which of them are armed.
const (
	// SiteCoreMethod fires inside the solve pipeline immediately before a
	// planned method runs — the spot where a buggy engine would fault.
	SiteCoreMethod = "core.method"
	// SiteCoreBatch fires in a SolveBatch worker before it claims work.
	SiteCoreBatch = "core.batch.worker"
	// SiteCorePortfolio fires in a portfolio racer before its engine runs.
	SiteCorePortfolio = "core.portfolio.engine"
	// SiteServiceSolve fires in the /v1/solve handler after admission,
	// exercising the HTTP-layer recover boundary.
	SiteServiceSolve = "service.solve"
)

// Kind is one fault flavor an armed site can execute.
type Kind uint8

const (
	// KindPanic panics with an Injected value; the solver's recover
	// boundaries must convert it to ErrEnginePanic.
	KindPanic Kind = iota
	// KindDelay sleeps briefly but honors context cancellation — a slow
	// but well-behaved engine.
	KindDelay
	// KindLeak stalls while IGNORING the context — a non-cooperative
	// engine that only the watchdog can reclaim.
	KindLeak
	// KindAllocSpike allocates and immediately drops a large buffer,
	// pressuring the GC mid-solve.
	KindAllocSpike
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindLeak:
		return "leak"
	case KindAllocSpike:
		return "allocSpike"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Injected is the value a KindPanic fault panics with, so recover
// boundaries (and tests) can tell injected panics from real bugs.
type Injected struct {
	Site  string
	Visit uint64
}

func (in Injected) Error() string {
	return fmt.Sprintf("fault: injected panic at %s (visit %d)", in.Site, in.Visit)
}

// Plan configures an Injector.
type Plan struct {
	// Seed makes the per-site fire sequence reproducible.
	Seed uint64
	// Rate is the per-visit fault probability in [0,1] (default 0.01).
	Rate float64
	// Sites limits injection to these site names; empty means every site.
	Sites []string
	// Kinds limits the fault flavors drawn; empty means all of them.
	Kinds []Kind
	// Delay is KindDelay's sleep (default 2ms).
	Delay time.Duration
	// Leak is KindLeak's context-ignoring stall (default 300ms).
	Leak time.Duration
	// AllocBytes is KindAllocSpike's transient allocation (default 8 MiB).
	AllocBytes int
}

func (p Plan) withDefaults() Plan {
	if p.Rate <= 0 {
		p.Rate = 0.01
	}
	if p.Rate > 1 {
		p.Rate = 1
	}
	if p.Delay <= 0 {
		p.Delay = 2 * time.Millisecond
	}
	if p.Leak <= 0 {
		p.Leak = 300 * time.Millisecond
	}
	if p.AllocBytes <= 0 {
		p.AllocBytes = 8 << 20
	}
	if len(p.Kinds) == 0 {
		p.Kinds = []Kind{KindPanic, KindDelay, KindLeak, KindAllocSpike}
	}
	return p
}

// Injector executes a Plan. Sites draw independent deterministic
// sequences: visit v at site s fires iff splitmix64(seed^fnv(s), v) maps
// under Rate, so two runs with the same seed inject the same faults at
// the same visits regardless of goroutine interleaving.
type Injector struct {
	plan   Plan
	sites  map[string]bool // nil = all sites armed
	visits sync.Map        // site -> *atomic.Uint64 visit counter
	fired  [kindCount]atomic.Int64
}

// NewInjector compiles a Plan.
func NewInjector(plan Plan) *Injector {
	inj := &Injector{plan: plan.withDefaults()}
	if len(plan.Sites) > 0 {
		inj.sites = make(map[string]bool, len(plan.Sites))
		for _, s := range plan.Sites {
			inj.sites[s] = true
		}
	}
	return inj
}

// Fired returns how many faults of each kind this injector executed.
func (inj *Injector) Fired() map[string]int64 {
	m := make(map[string]int64, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		if n := inj.fired[k].Load(); n > 0 {
			m[k.String()] = n
		}
	}
	return m
}

// visit draws the decision for one visit to site: whether to fault, and
// with which kind. Exposed unexported for determinism tests.
func (inj *Injector) visit(site string) (Kind, uint64, bool) {
	if inj.sites != nil && !inj.sites[site] {
		return 0, 0, false
	}
	cv, _ := inj.visits.LoadOrStore(site, new(atomic.Uint64))
	v := cv.(*atomic.Uint64).Add(1)
	h := splitmix64(inj.plan.Seed ^ fnvHash(site) ^ (v * 0x9e3779b97f4a7c15))
	// Top 53 bits → uniform float in [0,1).
	u := float64(h>>11) / (1 << 53)
	if u >= inj.plan.Rate {
		return 0, v, false
	}
	// A second scramble picks the kind, so kind choice is uncorrelated
	// with the fire decision.
	k := inj.plan.Kinds[splitmix64(h)%uint64(len(inj.plan.Kinds))]
	return k, v, true
}

// execute runs one fault in the calling goroutine.
func (inj *Injector) execute(ctx context.Context, site string, k Kind, v uint64) {
	inj.fired[k].Add(1)
	switch k {
	case KindPanic:
		panic(Injected{Site: site, Visit: v})
	case KindDelay:
		t := time.NewTimer(inj.plan.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	case KindLeak:
		time.Sleep(inj.plan.Leak)
	case KindAllocSpike:
		spike := make([]byte, inj.plan.AllocBytes)
		// Touch one byte per page so the allocation is real, then drop it.
		for i := 0; i < len(spike); i += 4096 {
			spike[i] = 1
		}
		sink.Store(&spike[0])
		sink.Store(nil)
	}
}

// sink defeats dead-store elimination of the alloc spike.
var sink atomic.Pointer[byte]

// active is the process-wide injector consulted by Visit. nil (the
// steady state) makes Visit a single atomic load.
var active atomic.Pointer[Injector]

// Enable arms a Plan process-wide and returns its Injector (for Fired).
// Callers must Disable when done — chaos harnesses defer it.
func Enable(plan Plan) *Injector {
	inj := NewInjector(plan)
	active.Store(inj)
	return inj
}

// Disable disarms injection.
func Disable() { active.Store(nil) }

// Visit is the production-code hook: a no-op unless a Plan is armed and
// selects this visit. It may panic (KindPanic) — callers sit inside the
// recover boundaries this package exists to exercise.
func Visit(ctx context.Context, site string) {
	inj := active.Load()
	if inj == nil {
		return
	}
	if k, v, fire := inj.visit(site); fire {
		inj.execute(ctx, site, k, v)
	}
}

// splitmix64 is the standard 64-bit finalizing mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
