// Package fault is the failure-domain toolkit behind lplserve's
// robustness layer. It has two halves:
//
// Quarantine tracks containment failures — engine panics, watchdog
// kills — keyed by instance identity (graph fingerprint + options
// hash). After Threshold failures inside one TTL window the key trips:
// subsequent identical requests are answered by a cheap Check instead
// of re-running the solve that just crashed, turning a crash loop into
// a one-line statistic. Tripped keys expire after the TTL and get a
// clean slate. The tracker is a bounded, sharded LRU in the same
// geometry as the solve cache and the intern store (2^4 independently
// locked shards, per-shard quotas, all-shard-locked consistent stats),
// so recording a failure never serializes the serving tier.
//
// Injection provides deterministic, seeded fault injection for chaos
// testing: production code calls Visit at named sites (see the Site*
// constants), which is a single atomic load — nil — when injection is
// disabled. When a Plan is Enabled, each visit draws a seeded hash of
// (seed, site, per-site visit number) and, at the configured rate,
// executes one of the fault kinds in place: panic (contained by the
// solver's recover boundaries), a context-respecting delay, a
// context-IGNORING stall (simulating a non-cooperative engine, which is
// what the stuck-solve watchdog exists to catch), or a transient
// allocation spike. The decision sequence per site is a pure function
// of the seed, so a chaos run's fault count is reproducible.
package fault

import (
	"container/list"
	"sync"
	"time"
)

// Defaults for Config's zero fields.
const (
	DefaultThreshold = 3
	DefaultTTL       = 5 * time.Minute
	DefaultCapacity  = 4096
)

// Config tunes a Quarantine. The zero value means defaults everywhere.
type Config struct {
	// Threshold is K: containment failures for one key, each within TTL
	// of the previous, before the key is quarantined. Default 3.
	Threshold int
	// TTL is both the failure-memory window (failures further apart than
	// TTL do not accumulate toward Threshold) and the sentence length (a
	// tripped key is released, with a clean slate, TTL after it tripped).
	// Default 5 minutes.
	TTL time.Duration
	// Capacity bounds tracked keys across all shards; beyond it the
	// least-recently-failing key is evicted. Default 4096.
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	return c
}

const (
	shardBits  = 4
	shardCount = 1 << shardBits

	// tripRingSize bounds the recent-trip ring consulted by TripsWithin;
	// more trips than this inside one readiness window is saturated
	// anyway.
	tripRingSize = 64
)

// Quarantine is the poison-instance tracker. Create with NewQuarantine;
// the zero value is not usable. All methods are safe for concurrent use.
type Quarantine struct {
	cfg    Config
	shards []*qShard
	mask   uint64
	now    func() time.Time // test hook; time.Now in production

	tripMu    sync.Mutex
	tripTimes []time.Time // ring of recent trip instants
	tripNext  int
}

type qShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // LRU by last recorded failure
	entries map[string]*list.Element

	records, trips, fastFails, expired, evictions int64
}

// qEntry is one tracked key. tripped is zero until the key quarantines.
type qEntry struct {
	key      string
	failures int
	lastFail time.Time
	tripped  time.Time
	reason   string
}

// NewQuarantine builds a tracker. The zero Config takes every default.
func NewQuarantine(cfg Config) *Quarantine {
	cfg = cfg.withDefaults()
	shards := shardCount
	if cfg.Capacity < shardCount {
		shards = 1
	}
	q := &Quarantine{
		cfg:    cfg,
		shards: make([]*qShard, shards),
		mask:   uint64(shards - 1),
		now:    time.Now,
	}
	base, rem := cfg.Capacity/shards, cfg.Capacity%shards
	for i := range q.shards {
		sc := base
		if i < rem {
			sc++
		}
		q.shards[i] = &qShard{cap: sc, ll: list.New(), entries: map[string]*list.Element{}}
	}
	return q
}

func (q *Quarantine) shard(key string) *qShard {
	return q.shards[fnvHash(key)&q.mask]
}

// Record notes one containment failure for key and reports whether this
// failure is the one that tripped the quarantine. reason is surfaced to
// clients fast-failed by Check (the last recorded reason wins).
func (q *Quarantine) Record(key, reason string) bool {
	sh := q.shard(key)
	now := q.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.records++
	var e *qEntry
	if el, ok := sh.entries[key]; ok {
		e = el.Value.(*qEntry)
		sh.ll.MoveToFront(el)
		if now.Sub(e.lastFail) > q.cfg.TTL {
			// Failures this far apart are not a crash loop: restart the
			// count (and any stale trip) from a clean slate.
			e.failures, e.tripped = 0, time.Time{}
		}
	} else {
		e = &qEntry{key: key}
		sh.entries[key] = sh.ll.PushFront(e)
		for sh.ll.Len() > sh.cap {
			back := sh.ll.Back()
			sh.ll.Remove(back)
			delete(sh.entries, back.Value.(*qEntry).key)
			sh.evictions++
		}
	}
	e.failures++
	e.lastFail = now
	e.reason = reason
	if e.failures >= q.cfg.Threshold && e.tripped.IsZero() {
		e.tripped = now
		sh.trips++
		q.noteTrip(now)
		return true
	}
	return false
}

// Check reports whether key is currently quarantined, returning the last
// failure reason when it is. An expired sentence is cleared on the spot
// (the key gets a clean slate), and every positive answer counts as one
// fast-fail in the stats.
func (q *Quarantine) Check(key string) (reason string, quarantined bool) {
	sh := q.shard(key)
	now := q.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return "", false
	}
	e := el.Value.(*qEntry)
	if e.tripped.IsZero() {
		return "", false
	}
	if now.Sub(e.tripped) > q.cfg.TTL {
		sh.ll.Remove(el)
		delete(sh.entries, key)
		sh.expired++
		return "", false
	}
	sh.fastFails++
	return e.reason, true
}

// noteTrip appends to the bounded recent-trip ring.
func (q *Quarantine) noteTrip(now time.Time) {
	q.tripMu.Lock()
	defer q.tripMu.Unlock()
	if len(q.tripTimes) < tripRingSize {
		q.tripTimes = append(q.tripTimes, now)
		return
	}
	q.tripTimes[q.tripNext] = now
	q.tripNext = (q.tripNext + 1) % tripRingSize
}

// TripsWithin counts quarantine trips in the trailing window — the
// signal /readyz uses for "this instance keeps tripping, drain it".
func (q *Quarantine) TripsWithin(window time.Duration) int {
	cutoff := q.now().Add(-window)
	q.tripMu.Lock()
	defer q.tripMu.Unlock()
	n := 0
	for _, t := range q.tripTimes {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}

// Stats is a consistent snapshot of a Quarantine's counters.
type Stats struct {
	// Threshold and TTLSeconds echo the configuration.
	Threshold  int
	TTLSeconds float64
	// Tracked keys currently held; Active of them are tripped and not yet
	// expired.
	Tracked, Active int64
	// Records counts failures recorded; Trips counts keys that crossed
	// the threshold; FastFails counts requests turned away by Check;
	// Expired counts sentences served out; Evictions counts keys dropped
	// by the capacity bound.
	Records, Trips, FastFails, Expired, Evictions int64
}

// Stats locks every shard before reading any counter, so the snapshot is
// internally consistent (same discipline as the solve cache).
func (q *Quarantine) Stats() Stats {
	now := q.now()
	for _, sh := range q.shards {
		sh.mu.Lock()
	}
	st := Stats{Threshold: q.cfg.Threshold, TTLSeconds: q.cfg.TTL.Seconds()}
	for _, sh := range q.shards {
		st.Tracked += int64(sh.ll.Len())
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*qEntry)
			if !e.tripped.IsZero() && now.Sub(e.tripped) <= q.cfg.TTL {
				st.Active++
			}
		}
		st.Records += sh.records
		st.Trips += sh.trips
		st.FastFails += sh.fastFails
		st.Expired += sh.expired
		st.Evictions += sh.evictions
	}
	for _, sh := range q.shards {
		sh.mu.Unlock()
	}
	return st
}

// fnvHash is FNV-1a, the same shard-selection hash the solve cache and
// intern store use.
func fnvHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}
