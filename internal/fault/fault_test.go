package fault

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock advances manually; Quarantine.now hooks onto it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestQuarantine(cfg Config) (*Quarantine, *fakeClock) {
	q := NewQuarantine(cfg)
	clk := newFakeClock()
	q.now = clk.now
	return q, clk
}

func TestQuarantineTripsAfterThreshold(t *testing.T) {
	q, _ := newTestQuarantine(Config{Threshold: 3, TTL: time.Minute})
	for i := 0; i < 2; i++ {
		if tripped := q.Record("k1", "enginePanic"); tripped {
			t.Fatalf("tripped after %d failures, threshold is 3", i+1)
		}
		if _, quarantined := q.Check("k1"); quarantined {
			t.Fatalf("quarantined after %d failures, threshold is 3", i+1)
		}
	}
	if !q.Record("k1", "enginePanic") {
		t.Fatal("third failure should trip")
	}
	reason, quarantined := q.Check("k1")
	if !quarantined || reason != "enginePanic" {
		t.Fatalf("Check = (%q, %v), want (enginePanic, true)", reason, quarantined)
	}
	// Other keys are unaffected.
	if _, quarantined := q.Check("k2"); quarantined {
		t.Fatal("untouched key quarantined")
	}
	st := q.Stats()
	if st.Trips != 1 || st.FastFails != 1 || st.Active != 1 || st.Records != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuarantineSentenceExpires(t *testing.T) {
	q, clk := newTestQuarantine(Config{Threshold: 2, TTL: time.Minute})
	q.Record("k", "stuckSolve")
	q.Record("k", "stuckSolve")
	if _, quarantined := q.Check("k"); !quarantined {
		t.Fatal("should be quarantined")
	}
	clk.advance(61 * time.Second)
	if _, quarantined := q.Check("k"); quarantined {
		t.Fatal("sentence should have expired")
	}
	// Expiry gives a clean slate: one new failure must not re-trip.
	if q.Record("k", "stuckSolve") {
		t.Fatal("first failure after expiry must not trip")
	}
	st := q.Stats()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestQuarantineStaleFailuresDoNotAccumulate(t *testing.T) {
	q, clk := newTestQuarantine(Config{Threshold: 2, TTL: time.Minute})
	q.Record("k", "enginePanic")
	clk.advance(2 * time.Minute)
	// The old failure aged out of the window, so this is failure #1 again.
	if q.Record("k", "enginePanic") {
		t.Fatal("failures 2 minutes apart must not accumulate under a 1-minute TTL")
	}
	if q.Record("k", "enginePanic") {
		// Second failure inside the window: trips (threshold 2).
		return
	}
	t.Fatal("two failures inside the window should trip")
}

func TestQuarantineCapacityEvicts(t *testing.T) {
	q, _ := newTestQuarantine(Config{Threshold: 2, TTL: time.Minute, Capacity: 8})
	// Single shard (capacity < shardCount), so eviction order is global LRU.
	for i := 0; i < 32; i++ {
		q.Record(string(rune('a'+i)), "enginePanic")
	}
	st := q.Stats()
	if st.Tracked != 8 {
		t.Fatalf("tracked = %d, want 8", st.Tracked)
	}
	if st.Evictions != 24 {
		t.Fatalf("evictions = %d, want 24", st.Evictions)
	}
}

func TestQuarantineTripsWithin(t *testing.T) {
	q, clk := newTestQuarantine(Config{Threshold: 1, TTL: time.Hour})
	q.Record("a", "x")
	clk.advance(30 * time.Second)
	q.Record("b", "x")
	if got := q.TripsWithin(time.Minute); got != 2 {
		t.Fatalf("TripsWithin(1m) = %d, want 2", got)
	}
	if got := q.TripsWithin(10 * time.Second); got != 1 {
		t.Fatalf("TripsWithin(10s) = %d, want 1", got)
	}
	clk.advance(2 * time.Minute)
	if got := q.TripsWithin(time.Minute); got != 0 {
		t.Fatalf("TripsWithin(1m) after 2m = %d, want 0", got)
	}
}

func TestQuarantineTripRingBounded(t *testing.T) {
	q, _ := newTestQuarantine(Config{Threshold: 1, TTL: time.Hour, Capacity: 4096})
	for i := 0; i < 3*tripRingSize; i++ {
		q.Record(string(rune(i)), "x")
	}
	if got := q.TripsWithin(time.Hour); got != tripRingSize {
		t.Fatalf("TripsWithin = %d, want ring size %d", got, tripRingSize)
	}
}

func TestQuarantineConcurrent(t *testing.T) {
	q, _ := newTestQuarantine(Config{Threshold: 3, TTL: time.Minute})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(w+i)%len(keys)]
				q.Record(k, "enginePanic")
				q.Check(k)
				q.TripsWithin(time.Minute)
			}
		}(w)
	}
	wg.Wait()
	st := q.Stats()
	if st.Records != 8*200 {
		t.Fatalf("records = %d, want %d", st.Records, 8*200)
	}
	if st.Trips != int64(len(keys)) {
		t.Fatalf("trips = %d, want %d (each key far past threshold)", st.Trips, len(keys))
	}
}

func TestInjectorDeterministic(t *testing.T) {
	draw := func() []uint64 {
		inj := NewInjector(Plan{Seed: 42, Rate: 0.1})
		var fired []uint64
		for i := 0; i < 2000; i++ {
			if _, v, fire := inj.visit(SiteCoreMethod); fire {
				fired = append(fired, v)
			}
		}
		return fired
	}
	a, b := draw(), draw()
	if len(a) == 0 {
		t.Fatal("rate 0.1 over 2000 visits fired nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("two identical runs fired %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire visit %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Rate sanity: 0.1 ± generous slack.
	if len(a) < 100 || len(a) > 320 {
		t.Fatalf("rate 0.1 over 2000 visits fired %d times", len(a))
	}
}

func TestInjectorSeedChangesSequence(t *testing.T) {
	fires := func(seed uint64) map[uint64]bool {
		inj := NewInjector(Plan{Seed: seed, Rate: 0.1})
		m := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			if _, v, fire := inj.visit(SiteCoreMethod); fire {
				m[v] = true
			}
		}
		return m
	}
	a, b := fires(1), fires(2)
	same := 0
	for v := range a {
		if b[v] {
			same++
		}
	}
	if same == len(a) && len(a) == len(b) {
		t.Fatal("different seeds produced identical fire sets")
	}
}

func TestInjectorSiteFilter(t *testing.T) {
	inj := NewInjector(Plan{Seed: 7, Rate: 1, Sites: []string{SiteCoreBatch}})
	if _, _, fire := inj.visit(SiteCoreMethod); fire {
		t.Fatal("unarmed site fired")
	}
	if _, _, fire := inj.visit(SiteCoreBatch); !fire {
		t.Fatal("armed site at rate 1 did not fire")
	}
}

func TestInjectorKindFilterAndFired(t *testing.T) {
	inj := NewInjector(Plan{Seed: 7, Rate: 1, Kinds: []Kind{KindDelay}, Delay: time.Microsecond})
	for i := 0; i < 10; i++ {
		k, v, fire := inj.visit(SiteCoreMethod)
		if !fire || k != KindDelay {
			t.Fatalf("visit %d: kind=%v fire=%v, want forced delay", i, k, fire)
		}
		inj.execute(context.Background(), SiteCoreMethod, k, v)
	}
	if got := inj.Fired()["delay"]; got != 10 {
		t.Fatalf("Fired[delay] = %d, want 10", got)
	}
}

func TestVisitPanicKindContained(t *testing.T) {
	Enable(Plan{Seed: 1, Rate: 1, Kinds: []Kind{KindPanic}})
	defer Disable()
	defer func() {
		r := recover()
		in, ok := r.(Injected)
		if !ok {
			t.Fatalf("recovered %T %v, want Injected", r, r)
		}
		if in.Site != SiteServiceSolve {
			t.Fatalf("Injected.Site = %q", in.Site)
		}
	}()
	Visit(context.Background(), SiteServiceSolve)
	t.Fatal("Visit at rate 1 with KindPanic did not panic")
}

func TestVisitDisabledIsNoop(t *testing.T) {
	Disable()
	for i := 0; i < 100; i++ {
		Visit(context.Background(), SiteCoreMethod)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Rate: 1, Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	inj.execute(ctx, SiteCoreMethod, KindDelay, 1)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("delay ignored cancelled context (took %v)", elapsed)
	}
}
