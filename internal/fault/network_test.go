package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// okDoer answers 200 and counts how many requests actually reached it.
type okDoer struct{ hits atomic.Int64 }

func (d *okDoer) Do(req *http.Request) (*http.Response, error) {
	d.hits.Add(1)
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(`{"ok":true}`)),
		Request:    req,
	}, nil
}

// drawSequence records site's first n visit decisions.
func drawSequence(inj *NetInjector, site string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k, v, fire := inj.visit(site)
		out = append(out, fmt.Sprintf("%d:%v:%s", v, fire, k))
	}
	return out
}

// TestNetInjectorDeterministic: same seed, same plan -> the same visits
// fault in the same way, independent of injector instance.
func TestNetInjectorDeterministic(t *testing.T) {
	plan := NetPlan{Seed: 42, Rate: 0.3}
	a := drawSequence(NewNetInjector(plan), "net.b0", 200)
	b := drawSequence(NewNetInjector(plan), "net.b0", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d diverged across identical injectors: %s vs %s", i+1, a[i], b[i])
		}
	}
	fired := 0
	for _, s := range a {
		if strings.Contains(s, ":true:") {
			fired++
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("rate 0.3 fired %d/200 visits — draw looks degenerate", fired)
	}
}

// TestNetInjectorSeedChangesSequence: a different seed must reshuffle
// which visits fault.
func TestNetInjectorSeedChangesSequence(t *testing.T) {
	a := drawSequence(NewNetInjector(NetPlan{Seed: 1, Rate: 0.3}), "net.b0", 200)
	b := drawSequence(NewNetInjector(NetPlan{Seed: 2, Rate: 0.3}), "net.b0", 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 drew identical 200-visit sequences")
	}
}

// TestNetInjectorSitesIndependent: two sites under one injector draw
// independent sequences (the site name is folded into the hash).
func TestNetInjectorSitesIndependent(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 7, Rate: 0.3})
	a := drawSequence(inj, "net.b0", 200)
	b := drawSequence(inj, "net.b1", 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sites net.b0 and net.b1 drew identical sequences")
	}
}

// TestNetInjectorSiteFilter: a plan scoped to one site never faults the
// others.
func TestNetInjectorSiteFilter(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 7, Rate: 1, Sites: []string{"net.b0"}, Kinds: []NetKind{NetFlaky5xx}})
	next := &okDoer{}
	armed := inj.Wrap("net.b0", next)
	spared := inj.Wrap("net.b1", next)

	req, _ := http.NewRequest(http.MethodGet, "http://backend/readyz", nil)
	if resp, err := armed.Do(req); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("armed site: resp/err = %v/%v, want injected 503", resp, err)
	}
	resp, err := spared.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("spared site: resp/err = %v/%v, want a clean 200", resp, err)
	}
	if next.hits.Load() != 1 {
		t.Fatalf("backend saw %d requests, want 1 (503 synthesized, never forwarded)", next.hits.Load())
	}
}

func newReq(t *testing.T, ctx context.Context) *http.Request {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://backend/readyz", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestFaultyDoerDrop(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 3, Rate: 1, Kinds: []NetKind{NetDrop}})
	next := &okDoer{}
	fd := inj.Wrap("net.b0", next)
	_, err := fd.Do(newReq(t, context.Background()))
	var dropped Dropped
	if !errors.As(err, &dropped) {
		t.Fatalf("err = %v, want a fault.Dropped", err)
	}
	if dropped.Site != "net.b0" || dropped.Visit != 1 {
		t.Fatalf("dropped = %+v, want site net.b0 visit 1", dropped)
	}
	if next.hits.Load() != 0 {
		t.Fatal("dropped request reached the backend")
	}
	if inj.Fired()["drop"] != 1 {
		t.Fatalf("fired = %v, want drop:1", inj.Fired())
	}
}

func TestFaultyDoerDelayForwards(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 3, Rate: 1, Kinds: []NetKind{NetDelay}, Delay: 20 * time.Millisecond})
	next := &okDoer{}
	fd := inj.Wrap("net.b0", next)
	start := time.Now()
	resp, err := fd.Do(newReq(t, context.Background()))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("resp/err = %v/%v, want a delayed 200", resp, err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("request answered in %v, want >= the 20ms hold", elapsed)
	}
	if next.hits.Load() != 1 {
		t.Fatal("delayed request never forwarded")
	}
}

func TestFaultyDoerBlackholeHonorsContext(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 3, Rate: 1, Kinds: []NetKind{NetBlackhole}, BlackholeMax: 10 * time.Second})
	next := &okDoer{}
	fd := inj.Wrap("net.b0", next)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fd.Do(newReq(t, ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("blackhole held the request %v past the caller's 30ms deadline", elapsed)
	}
	if next.hits.Load() != 0 {
		t.Fatal("blackholed request reached the backend")
	}
}

func TestFaultyDoerFlaky5xxNeverForwards(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 3, Rate: 1, Kinds: []NetKind{NetFlaky5xx}})
	next := &okDoer{}
	fd := inj.Wrap("net.b0", next)
	resp, err := fd.Do(newReq(t, context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"code":"fault"`) {
		t.Fatalf("body = %s, want the injected-fault marker", body)
	}
	if next.hits.Load() != 0 {
		t.Fatal("flaky-5xx request reached the backend")
	}
}

// TestFaultyDoerRateZeroIsTransparent: Rate<=0 takes the default 1%%,
// so transparency is asserted with an explicit site filter miss.
func TestFaultyDoerUnarmedSiteTransparent(t *testing.T) {
	inj := NewNetInjector(NetPlan{Seed: 3, Rate: 1, Sites: []string{"net.elsewhere"}})
	next := &okDoer{}
	fd := inj.Wrap("net.b0", next)
	for i := 0; i < 50; i++ {
		resp, err := fd.Do(newReq(t, context.Background()))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("visit %d: resp/err = %v/%v, want clean passthrough", i, resp, err)
		}
	}
	if next.hits.Load() != 50 {
		t.Fatalf("backend saw %d of 50 requests", next.hits.Load())
	}
	if len(inj.Fired()) != 0 {
		t.Fatalf("fired = %v, want none", inj.Fired())
	}
}
