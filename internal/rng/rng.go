// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the library for workload generation and
// randomized heuristics.
//
// All experiments in this repository are seeded, so results are exactly
// reproducible run-to-run. The generator is xoshiro256** seeded via
// splitmix64, the combination recommended by its authors. It is NOT
// cryptographically secure; it is a simulation RNG.
package rng

import "math/bits"

// RNG is a xoshiro256** pseudo-random generator. The zero value is invalid;
// use New. RNG is not safe for concurrent use; give each goroutine its own
// (see Split).
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via splitmix64.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent generator from r, advancing r.
// Use it to hand per-worker generators to goroutines.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }
