package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds nearly identical: %d collisions", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		x := r.Intn(10)
		if x < 0 || x >= 10 {
			t.Fatalf("Intn out of range: %d", x)
		}
		counts[x]++
	}
	// Uniformity sanity: each bucket within ±15% of 10000.
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	var sum float64
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams nearly identical: %d collisions", same)
	}
}
