package coloring

import (
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

func TestVerify(t *testing.T) {
	g := graph.Cycle(4)
	if err := Verify(g, Coloring{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, Coloring{0, 0, 1, 1}); err == nil {
		t.Fatal("monochromatic edge must fail")
	}
	if err := Verify(g, Coloring{0, 1, 0}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := Verify(g, Coloring{0, -1, 0, 1}); err == nil {
		t.Fatal("negative color must fail")
	}
}

func TestExactKnownChromaticNumbers(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		chi  int
	}{
		{"empty5", graph.New(5), 1},
		{"K1", graph.Complete(1), 1},
		{"K4", graph.Complete(4), 4},
		{"K7", graph.Complete(7), 7},
		{"P6", graph.Path(6), 2},
		{"C5", graph.Cycle(5), 3},
		{"C6", graph.Cycle(6), 2},
		{"C7", graph.Cycle(7), 3},
		{"Petersen-like W6", graph.Wheel(6), 4}, // odd cycle C5 + hub
		{"W7", graph.Wheel(7), 3},               // even cycle C6 + hub
		{"Star9", graph.Star(9), 2},
		{"K33", graph.CompleteMultipartite(3, 3), 2},
		{"K222", graph.CompleteMultipartite(2, 2, 2), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col, chi, err := Exact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if chi != tc.chi {
				t.Fatalf("χ = %d, want %d", chi, tc.chi)
			}
			if err := Verify(tc.g, col); err != nil {
				t.Fatal(err)
			}
			if col.NumColors() != chi {
				t.Fatalf("coloring uses %d colors, claimed %d", col.NumColors(), chi)
			}
		})
	}
}

func TestHeuristicsProper(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		g := graph.GNP(r, 1+r.Intn(40), 0.3)
		order := r.Perm(g.N())
		for name, col := range map[string]Coloring{
			"greedy": Greedy(g, order),
			"wp":     GreedyDegreeOrder(g),
			"dsatur": DSATUR(g),
		} {
			if err := Verify(g, col); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestDSATURNotWorseThanExactPlusSlack(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(r, 2+r.Intn(12), 0.4)
		_, chi, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := DSATUR(g).NumColors(); d < chi {
			t.Fatalf("DSATUR %d below χ %d — exact solver is wrong", d, chi)
		}
	}
}

func TestNDExactMatchesExact(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		// Graphs with small nd by construction.
		ell := 2 + r.Intn(4)
		sizes := make([]int, ell)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(4)
		}
		g := graph.RandomNDGraph(r, sizes, 0.5, 0.5)
		col, chi, err := NDExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, col); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if col.NumColors() != chi {
			t.Fatalf("trial %d: claimed %d colors, used %d", trial, chi, col.NumColors())
		}
		if g.N() <= 16 {
			_, want, err := Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			if chi != want {
				t.Fatalf("trial %d: NDExact χ=%d, Exact χ=%d", trial, chi, want)
			}
		}
	}
}

func TestNDExactOnClassicGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		chi  int
	}{
		{"K5", graph.Complete(5), 5},
		{"empty4", graph.New(4), 1},
		{"K33", graph.CompleteMultipartite(3, 3), 2},
		{"K231", graph.CompleteMultipartite(2, 3, 1), 3},
		{"star", graph.Star(7), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			col, chi, err := NDExact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if chi != tc.chi {
				t.Fatalf("χ = %d, want %d", chi, tc.chi)
			}
			if err := Verify(tc.g, col); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNDExactOddCycleQuotient(t *testing.T) {
	// C5 has nd = 5 (all classes singletons); its quotient IS C5, whose
	// multicoloring with unit demands is χ(C5) = 3 — exercises the
	// non-clique-bound case of the multicoloring recursion.
	col, chi, err := NDExact(graph.Cycle(5))
	if err != nil {
		t.Fatal(err)
	}
	if chi != 3 {
		t.Fatalf("χ(C5) = %d, want 3", chi)
	}
	if err := Verify(graph.Cycle(5), col); err != nil {
		t.Fatal(err)
	}
}

func TestExactRejectsLarge(t *testing.T) {
	if _, _, err := Exact(graph.New(ExactMaxN + 1)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestNDExactRejectsHugeDiversity(t *testing.T) {
	r := rng.New(4)
	g := graph.GNP(r, NDMaxClasses+10, 0.5) // almost surely nd = n
	if _, _, err := NDExact(g); err == nil {
		t.Skip("random graph happened to have small nd")
	}
}
