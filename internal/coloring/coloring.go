// Package coloring implements graph coloring: greedy and DSATUR
// heuristics, an exact branch-and-bound chromatic number, and the
// neighborhood-diversity FPT coloring that powers Theorem 4
// (L(1,…,1)-LABELING is FPT in modular-width, via COLORING of Gᵏ
// parameterized by nd).
//
// A proper coloring of Gᵏ with c colors is exactly an L(1,…,1)-labeling
// (k ones) with span c−1.
package coloring

import (
	"fmt"
	"sort"

	"lpltsp/internal/graph"
)

// Coloring maps each vertex to a color in 0..c-1.
type Coloring []int

// NumColors returns the number of distinct colors used (max+1).
func (c Coloring) NumColors() int {
	m := -1
	for _, x := range c {
		if x > m {
			m = x
		}
	}
	return m + 1
}

// Verify checks that c is a proper coloring of g.
func Verify(g *graph.Graph, c Coloring) error {
	if len(c) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(c), g.N())
	}
	for v, cv := range c {
		if cv < 0 {
			return fmt.Errorf("coloring: vertex %d has negative color", v)
		}
	}
	for _, e := range g.Edges() {
		if c[e[0]] == c[e[1]] {
			return fmt.Errorf("coloring: edge {%d,%d} monochromatic (color %d)", e[0], e[1], c[e[0]])
		}
	}
	return nil
}

// Greedy colors vertices in the given order with first-fit.
func Greedy(g *graph.Graph, order []int) Coloring {
	n := g.N()
	c := make(Coloring, n)
	for i := range c {
		c[i] = -1
	}
	forbidden := make([]int, n+1)
	stamp := 0
	for _, v := range order {
		stamp++
		for _, u := range g.Neighbors(v) {
			if cu := c[u]; cu >= 0 {
				forbidden[cu] = stamp
			}
		}
		col := 0
		for forbidden[col] == stamp {
			col++
		}
		c[v] = col
	}
	return c
}

// GreedyDegreeOrder colors by decreasing degree (Welsh–Powell).
func GreedyDegreeOrder(g *graph.Graph) Coloring {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	return Greedy(g, order)
}

// DSATUR colors by the maximum-saturation heuristic (Brélaz).
func DSATUR(g *graph.Graph) Coloring {
	n := g.N()
	c := make(Coloring, n)
	for i := range c {
		c[i] = -1
	}
	if n == 0 {
		return c
	}
	satSets := make([]map[int]struct{}, n)
	for i := range satSets {
		satSets[i] = make(map[int]struct{})
	}
	colored := 0
	for colored < n {
		// Pick uncolored vertex with max saturation, tie-break by degree.
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if c[v] >= 0 {
				continue
			}
			sat, deg := len(satSets[v]), g.Degree(v)
			if sat > bestSat || (sat == bestSat && deg > bestDeg) {
				best, bestSat, bestDeg = v, sat, deg
			}
		}
		col := 0
		for {
			if _, bad := satSets[best][col]; !bad {
				break
			}
			col++
		}
		c[best] = col
		for _, u := range g.Neighbors(best) {
			if c[u] < 0 {
				satSets[u][col] = struct{}{}
			}
		}
		colored++
	}
	return c
}

// ExactMaxN caps the exact chromatic-number search.
const ExactMaxN = 30

// Exact computes the chromatic number and an optimal coloring by iterative
// deepening with a DSATUR-ordered branch and bound.
func Exact(g *graph.Graph) (Coloring, int, error) {
	n := g.N()
	if n > ExactMaxN {
		return nil, 0, fmt.Errorf("coloring: exact limited to n <= %d, got %d", ExactMaxN, n)
	}
	if n == 0 {
		return Coloring{}, 0, nil
	}
	ub := DSATUR(g).NumColors()
	lb := cliqueLB(g)
	for target := lb; target <= ub; target++ {
		if c := tryColor(g, target); c != nil {
			return c, target, nil
		}
	}
	c := DSATUR(g)
	return c, c.NumColors(), nil // unreachable in practice
}

// tryColor searches for a proper coloring with exactly ≤ target colors.
func tryColor(g *graph.Graph, target int) Coloring {
	n := g.N()
	c := make(Coloring, n)
	for i := range c {
		c[i] = -1
	}
	// Order by decreasing degree for stronger early pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	var rec func(idx, used int) bool
	rec = func(idx, used int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		var mask uint64
		for _, u := range g.Neighbors(v) {
			if cu := c[u]; cu >= 0 {
				mask |= 1 << uint(cu)
			}
		}
		limit := used + 1 // symmetry breaking: at most one brand-new color
		if limit > target {
			limit = target
		}
		for col := 0; col < limit; col++ {
			if mask&(1<<uint(col)) != 0 {
				continue
			}
			c[v] = col
			nu := used
			if col == used {
				nu++
			}
			if rec(idx+1, nu) {
				return true
			}
			c[v] = -1
		}
		return false
	}
	if rec(0, 0) {
		return c
	}
	return nil
}

// cliqueLB returns the size of a greedy clique (a chromatic lower bound).
func cliqueLB(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	bestV, bestD := 0, -1
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > bestD {
			bestV, bestD = v, d
		}
	}
	clique := []int{bestV}
	for v := 0; v < n; v++ {
		if v == bestV {
			continue
		}
		ok := true
		for _, c := range clique {
			if !g.HasEdge(v, c) {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
		}
	}
	return len(clique)
}
