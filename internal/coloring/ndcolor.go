package coloring

import (
	"fmt"
	"strconv"

	"lpltsp/internal/graph"
	"lpltsp/internal/modular"
)

// NDMaxClasses caps the neighborhood-diversity FPT coloring: the
// maximal-independent-set enumeration over the type quotient is
// exponential in the number of classes ℓ (that is what "FPT in ℓ" means),
// so we refuse inputs whose quotient is too large to finish.
const NDMaxClasses = 20

// NDExact computes the chromatic number exactly in FPT time parameterized
// by neighborhood diversity (Lampis-style, the engine behind Theorem 4).
//
// Method: partition V into nd type classes; a color class is an
// independent set, which uses at most one vertex from each clique-type
// class and any number from each independent-type class, and cannot mix
// adjacent classes. So χ(G) is the weighted chromatic number
// (multicoloring number) of the type quotient Q with demands
// d_i = |V_i| for clique classes and d_i = 1 for independent classes,
// solved exactly by memoized recursion over maximal independent sets of Q.
func NDExact(g *graph.Graph) (Coloring, int, error) {
	n := g.N()
	if n == 0 {
		return Coloring{}, 0, nil
	}
	ell, part := modular.ND(g)
	if ell > NDMaxClasses {
		return nil, 0, fmt.Errorf("coloring: nd = %d exceeds FPT budget %d", ell, NDMaxClasses)
	}
	// Quotient adjacency (classes are modules: any representative works).
	adj := make([][]bool, ell)
	for i := range adj {
		adj[i] = make([]bool, ell)
	}
	for i := 0; i < ell; i++ {
		for j := i + 1; j < ell; j++ {
			if g.HasEdge(part.Classes[i][0], part.Classes[j][0]) {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	demands := make([]int, ell)
	for i := range demands {
		if part.IsClique[i] {
			demands[i] = len(part.Classes[i])
		} else {
			demands[i] = 1
		}
	}
	sets, count := multicolor(adj, demands)
	// Reconstruct a vertex coloring from the chosen independent sets
	// (one color per set instance).
	col := make(Coloring, n)
	for i := range col {
		col[i] = -1
	}
	next := make([]int, ell) // next unused vertex index per clique class
	for colorIdx, s := range sets {
		for _, cls := range s {
			if part.IsClique[cls] {
				if next[cls] < len(part.Classes[cls]) {
					col[part.Classes[cls][next[cls]]] = colorIdx
					next[cls]++
				}
			} else {
				// Whole independent class takes this color once.
				if col[part.Classes[cls][0]] < 0 {
					for _, v := range part.Classes[cls] {
						col[v] = colorIdx
					}
				}
			}
		}
	}
	for v, cv := range col {
		if cv < 0 {
			return nil, 0, fmt.Errorf("coloring: internal error, vertex %d uncolored", v)
		}
	}
	return col, count, nil
}

// multicolor solves the weighted chromatic number of the quotient exactly:
// the minimum number of independent sets (with repetition) covering
// demands. Returns the chosen sets in color order and their count.
func multicolor(adj [][]bool, demands []int) ([][]int, int) {
	ell := len(demands)
	memo := make(map[string]int)
	choice := make(map[string][]int)

	var solve func(d []int) int
	solve = func(d []int) int {
		// Find a positive-demand class (pick max demand for pruning).
		pick, maxD := -1, 0
		for i, di := range d {
			if di > maxD {
				pick, maxD = i, di
			}
		}
		if pick < 0 {
			return 0
		}
		key := demandKey(d)
		if v, ok := memo[key]; ok {
			return v
		}
		best := 1 << 30
		var bestSet []int
		// Enumerate maximal (w.r.t. positive-demand support) independent
		// sets containing pick.
		support := make([]int, 0, ell)
		for i, di := range d {
			if di > 0 && i != pick {
				support = append(support, i)
			}
		}
		var cur []int
		var enum func(idx int)
		enum = func(idx int) {
			if idx == len(support) {
				// Check maximality: no support class outside cur∪{pick}
				// could be added. (Skipping the check keeps correctness —
				// non-maximal sets are dominated — but enumerating fewer
				// sets is faster; we filter dominated sets cheaply.)
				nd := append([]int(nil), d...)
				set := append([]int{pick}, cur...)
				for _, c := range set {
					if nd[c] > 0 {
						nd[c]--
					}
				}
				if sub := solve(nd); sub+1 < best {
					best = sub + 1
					bestSet = set
				}
				return
			}
			c := support[idx]
			// Option 1: include c if independent from current set.
			ok := !adj[pick][c]
			if ok {
				for _, x := range cur {
					if adj[x][c] {
						ok = false
						break
					}
				}
			}
			if ok {
				cur = append(cur, c)
				enum(idx + 1)
				cur = cur[:len(cur)-1]
				// Option 2 (exclude c) is only worth exploring if some
				// later or conflicting structure needs it; excluding an
				// addable class can never help a covering problem where
				// sets may repeat, EXCEPT it can: demands differ. Keep
				// the exclude branch for exactness.
				enum(idx + 1)
			} else {
				enum(idx + 1)
			}
		}
		enum(0)
		memo[key] = best
		choice[key] = bestSet
		return best
	}

	d := append([]int(nil), demands...)
	total := solve(d)
	// Replay choices to list the sets.
	sets := make([][]int, 0, total)
	for {
		pickExists := false
		for _, di := range d {
			if di > 0 {
				pickExists = true
				break
			}
		}
		if !pickExists {
			break
		}
		s := choice[demandKey(d)]
		sets = append(sets, s)
		for _, c := range s {
			if d[c] > 0 {
				d[c]--
			}
		}
	}
	return sets, total
}

func demandKey(d []int) string {
	b := make([]byte, 0, len(d)*3)
	for _, x := range d {
		b = strconv.AppendInt(b, int64(x), 10)
		b = append(b, ',')
	}
	return string(b)
}
