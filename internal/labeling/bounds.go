package labeling

import "lpltsp/internal/graph"

// Lower and upper bounds on λ_p used for sanity checks, branch-and-bound
// seeding, and the experiment tables.

// PathLowerBound returns the trivial reduction-side lower bound for
// connected graphs with diam ≤ k: every Hamiltonian path of H has n−1
// edges of weight ≥ pmin, so λ_p ≥ (n−1)·pmin. Valid whenever the
// reduction applies; returns 0 otherwise-shaped inputs (n ≤ 1).
func PathLowerBound(n int, p Vector) int {
	if n <= 1 {
		return 0
	}
	pmin, _ := p.MinMax()
	return (n - 1) * pmin
}

// CliqueLowerBound returns (ω̃−1)·pmin where ω̃ is the size of a greedily
// found clique in the k-th power Gᵏ: all its vertices are pairwise within
// distance k, so their labels pairwise differ by ≥ pmin, forcing span
// ≥ (ω̃−1)·pmin. A heuristic (not maximum) clique still yields a valid
// lower bound.
func CliqueLowerBound(g *graph.Graph, p Vector) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	pk := g.Power(len(p))
	// Greedy clique grown from the highest-degree vertex of Gᵏ.
	best := 0
	for _, start := range []int{maxDegVertex(pk)} {
		clique := []int{start}
		for v := 0; v < n; v++ {
			if v == start {
				continue
			}
			ok := true
			for _, c := range clique {
				if !pk.HasEdge(v, c) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	pmin, _ := p.MinMax()
	return (best - 1) * pmin
}

func maxDegVertex(g *graph.Graph) int {
	best, bestD := 0, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestD {
			best, bestD = v, d
		}
	}
	return best
}

// GriggsYehUpperBound21 returns the classical Δ²+2Δ upper bound on
// λ_{2,1}(G) (Griggs & Yeh 1992). It applies to p = (2,1) only.
func GriggsYehUpperBound21(g *graph.Graph) int {
	d := g.MaxDegree()
	return d*d + 2*d
}

// GreedyUpperBound runs the first-fit heuristic in all three orders and
// returns the best span found — a cheap valid upper bound for any graph
// and p.
func GreedyUpperBound(g *graph.Graph, p Vector) int {
	best := -1
	for _, ord := range []GreedyOrder{OrderDegree, OrderBFS, OrderNatural} {
		if _, span, err := GreedyFirstFit(g, p, ord); err == nil {
			if best < 0 || span < best {
				best = span
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
