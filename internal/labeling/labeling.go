// Package labeling defines the L(p)-labeling problem — the
// distance-constrained graph labeling the paper studies — together with
// validity checking, independent exact baselines, greedy heuristics,
// classical closed-form values, and general bounds.
//
// For a graph G and a vector p = (p1,…,pk), a labeling l: V → ℕ∪{0} is an
// L(p)-labeling iff |l(u)−l(v)| ≥ p_d for every pair u,v at distance
// d ≤ k. The span is max_v l(v); L(p)-LABELING asks for the minimum span
// λ_p(G).
package labeling

import (
	"fmt"

	"lpltsp/internal/graph"
)

// Vector is the distance-constraint vector p = (p1,…,pk): vertices at
// distance d must receive labels at least p[d-1] apart.
type Vector []int

// L21 is the classical p = (2,1) of frequency assignment.
func L21() Vector { return Vector{2, 1} }

// Ones returns the all-ones vector of dimension k (L(1,…,1)-labeling,
// equivalent to coloring Gᵏ).
func Ones(k int) Vector {
	v := make(Vector, k)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Validate checks that p is a usable constraint vector.
func (p Vector) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("labeling: empty constraint vector")
	}
	for d, pd := range p {
		if pd < 0 {
			return fmt.Errorf("labeling: p[%d] = %d is negative", d+1, pd)
		}
	}
	return nil
}

// K returns the dimension of p (the distance horizon).
func (p Vector) K() int { return len(p) }

// MinMax returns pmin and pmax.
func (p Vector) MinMax() (pmin, pmax int) {
	pmin, pmax = p[0], p[0]
	for _, x := range p[1:] {
		if x < pmin {
			pmin = x
		}
		if x > pmax {
			pmax = x
		}
	}
	return pmin, pmax
}

// SatisfiesReductionCondition reports whether pmax ≤ 2·pmin, the hypothesis
// of Theorem 2.
func (p Vector) SatisfiesReductionCondition() bool {
	pmin, pmax := p.MinMax()
	return pmax <= 2*pmin
}

// Scale returns c·p. Used by Corollary 3 (λ_{cp} = c·λ_p).
func (p Vector) Scale(c int) Vector {
	q := make(Vector, len(p))
	for i, x := range p {
		q[i] = c * x
	}
	return q
}

// Labeling assigns a nonnegative label to every vertex.
type Labeling []int

// Span returns max label, or 0 for an empty labeling.
func (l Labeling) Span() int {
	s := 0
	for _, x := range l {
		if x > s {
			s = x
		}
	}
	return s
}

// MergeComponents assembles a labeling of an n-vertex graph from labelings
// of its connected components: comps[i] lists the component's vertices in
// the order labs[i] labels them (labs[i][j] is the label of comps[i][j]).
// Vertices in different components are at infinite distance, so no
// distance constraint crosses a component boundary and every component may
// start at label 0 independently; the merged span is therefore the maximum
// of the component spans, which is returned alongside the labeling.
func MergeComponents(n int, comps [][]int, labs []Labeling) (Labeling, int, error) {
	if len(comps) != len(labs) {
		return nil, 0, fmt.Errorf("labeling: %d components with %d labelings", len(comps), len(labs))
	}
	l := make(Labeling, n)
	for i := range l {
		l[i] = -1
	}
	span := 0
	for i, comp := range comps {
		if len(comp) != len(labs[i]) {
			return nil, 0, fmt.Errorf("labeling: component %d has %d vertices, labeling has %d entries",
				i, len(comp), len(labs[i]))
		}
		for j, v := range comp {
			if v < 0 || v >= n {
				return nil, 0, fmt.Errorf("labeling: component %d vertex %d out of range [0,%d)", i, v, n)
			}
			if l[v] >= 0 {
				return nil, 0, fmt.Errorf("labeling: vertex %d appears in two components", v)
			}
			l[v] = labs[i][j]
			if labs[i][j] > span {
				span = labs[i][j]
			}
		}
	}
	for v, x := range l {
		if x < 0 {
			return nil, 0, fmt.Errorf("labeling: vertex %d missing from every component", v)
		}
	}
	return l, span, nil
}

// Verify checks that l is a valid L(p)-labeling of g: correct length,
// nonnegative labels, and every pair at distance d ≤ len(p) separated by at
// least p_d. O(n²) after the distance matrix.
func Verify(g *graph.Graph, p Vector, l Labeling) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n := g.N()
	if len(l) != n {
		return fmt.Errorf("labeling: labeling has %d entries for %d vertices", len(l), n)
	}
	for v, x := range l {
		if x < 0 {
			return fmt.Errorf("labeling: vertex %d has negative label %d", v, x)
		}
	}
	dm := g.AllPairsDistances()
	k := len(p)
	for u := 0; u < n; u++ {
		row := dm.Row(u)
		for v := u + 1; v < n; v++ {
			d := int(row[v])
			if row[v] == graph.Unreachable || d > k {
				continue
			}
			diff := l[u] - l[v]
			if diff < 0 {
				diff = -diff
			}
			if diff < p[d-1] {
				return fmt.Errorf("labeling: |l(%d)−l(%d)| = %d < p_%d = %d (distance %d)",
					u, v, diff, d, p[d-1], d)
			}
		}
	}
	return nil
}

// VerifyWithMatrix is Verify with a precomputed distance matrix (hot paths).
func VerifyWithMatrix(dm *graph.DistMatrix, p Vector, l Labeling) error {
	n := dm.N
	if len(l) != n {
		return fmt.Errorf("labeling: labeling has %d entries for %d vertices", len(l), n)
	}
	k := len(p)
	for u := 0; u < n; u++ {
		row := dm.Row(u)
		for v := u + 1; v < n; v++ {
			d := int(row[v])
			if row[v] == graph.Unreachable || d > k {
				continue
			}
			diff := l[u] - l[v]
			if diff < 0 {
				diff = -diff
			}
			if diff < p[d-1] {
				return fmt.Errorf("labeling: |l(%d)−l(%d)| = %d < p_%d = %d (distance %d)",
					u, v, diff, d, p[d-1], d)
			}
		}
	}
	return nil
}
