package labeling

import (
	"fmt"

	"lpltsp/internal/graph"
)

// BruteForceMaxN caps the permutation-based exact baseline.
const BruteForceMaxN = 11

// BruteForceExact computes λ_p(G) and an optimal labeling by enumerating
// vertex orderings with branch-and-bound pruning. It is completely
// independent of the TSP reduction — it needs neither the diameter
// condition nor pmax ≤ 2·pmin — and serves as the ground-truth oracle in
// tests and experiment E2.
//
// Correctness: every labeling, sorted by label value, yields an ordering π
// for which the greedy completion l(v_i) = max_{j<i}(l(v_j) + p(d(v_j,v_i)))
// (with p(d) = 0 for d > k) is valid and no larger; hence minimizing the
// greedy completion over all orderings gives λ_p(G).
func BruteForceExact(g *graph.Graph, p Vector) (Labeling, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.N()
	if n > BruteForceMaxN {
		return nil, 0, fmt.Errorf("labeling: brute force limited to n <= %d, got %d", BruteForceMaxN, n)
	}
	if n == 0 {
		return Labeling{}, 0, nil
	}
	dm := g.AllPairsDistances()
	k := len(p)
	// pd[u][v] = separation requirement between u and v (0 beyond horizon).
	sep := make([][]int, n)
	for u := range sep {
		sep[u] = make([]int, n)
		row := dm.Row(u)
		for v := 0; v < n; v++ {
			d := int(row[v])
			if u != v && row[v] != graph.Unreachable && d <= k {
				sep[u][v] = p[d-1]
			}
		}
	}

	best := -1
	bestLab := make(Labeling, n)
	perm := make([]int, n)
	inPerm := make([]bool, n)
	labels := make([]int, n) // labels[i] = label of perm[i]

	var rec func(depth, curMax int)
	rec = func(depth, curMax int) {
		if depth == n {
			if best < 0 || curMax < best {
				best = curMax
				for i, v := range perm[:depth] {
					bestLab[v] = labels[i]
				}
			}
			return
		}
		for v := 0; v < n; v++ {
			if inPerm[v] {
				continue
			}
			lab := 0
			for i := 0; i < depth; i++ {
				if c := labels[i] + sep[perm[i]][v]; c > lab {
					lab = c
				}
			}
			newMax := curMax
			if lab > newMax {
				newMax = lab
			}
			if best >= 0 && newMax >= best {
				continue // prefix already no better than the incumbent
			}
			perm[depth] = v
			inPerm[v] = true
			labels[depth] = lab
			rec(depth+1, newMax)
			inPerm[v] = false
		}
	}
	rec(0, 0)
	return bestLab, best, nil
}

// ExactForOrdering computes the minimum-span labeling among labelings that
// are nondecreasing along the given vertex ordering π (the quantity
// λ_p(G,π) of the paper). The greedy completion is optimal for the fixed
// ordering; see BruteForceExact.
func ExactForOrdering(g *graph.Graph, p Vector, pi []int) (Labeling, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.N()
	if len(pi) != n {
		return nil, 0, fmt.Errorf("labeling: ordering has %d entries for %d vertices", len(pi), n)
	}
	if n == 0 {
		return Labeling{}, 0, nil
	}
	dm := g.AllPairsDistances()
	k := len(p)
	l := make(Labeling, n)
	for i := 1; i < n; i++ {
		v := pi[i]
		row := dm.Row(v)
		lab := l[pi[i-1]] // monotone along π, per the paper's definition
		for j := 0; j < i; j++ {
			u := pi[j]
			d := int(row[u])
			if row[u] == graph.Unreachable || d > k {
				continue
			}
			if c := l[u] + p[d-1]; c > lab {
				lab = c
			}
		}
		l[v] = lab
	}
	return l, l[pi[n-1]], nil
}
