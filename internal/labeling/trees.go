package labeling

import (
	"fmt"

	"lpltsp/internal/graph"
)

// Exact L(2,1)-labeling of trees, in the style of Chang & Kuo (1996) —
// the polynomial class the paper contrasts with its graph-agnostic TSP
// approach ("the polynomial-time solvability for trees depends on not a
// tree-like structure but the tree structure itself").
//
// Facts used: for any graph, λ_{2,1} ≥ Δ+1; for trees, λ_{2,1} ≤ Δ+2
// (Griggs & Yeh), so only the decision "is span Δ+1 feasible?" is needed.
// Feasibility is decided bottom-up: feas[v][a][b] says the subtree hanging
// below edge (parent(v), v) can be labeled with l(parent(v)) = a and
// l(v) = b. Computing feas[v][a][b] asks whether the children of v can be
// assigned distinct labels, each at distance ≥ 2 from b and ≠ a, whose own
// subtrees are feasible — a bipartite matching between children and
// labels.

// TreeLambda21 returns λ_{2,1} of a tree together with an optimal
// labeling. It errors if g is not a tree (connected, m = n−1).
func TreeLambda21(g *graph.Graph) (Labeling, int, error) {
	n := g.N()
	if n == 0 {
		return Labeling{}, 0, nil
	}
	if g.M() != n-1 || !g.IsConnected() {
		return nil, 0, fmt.Errorf("labeling: not a tree (n=%d, m=%d, connected=%v)",
			n, g.M(), g.IsConnected())
	}
	if n == 1 {
		return Labeling{0}, 0, nil
	}
	delta := g.MaxDegree()
	// Try span Δ+1 first; Δ+2 always works for trees.
	for _, span := range []int{delta + 1, delta + 2} {
		if lab := treeLabel(g, span); lab != nil {
			if err := Verify(g, L21(), lab); err != nil {
				return nil, 0, fmt.Errorf("labeling: internal error: %w", err)
			}
			return lab, span, nil
		}
	}
	return nil, 0, fmt.Errorf("labeling: internal error: tree not labelable with Δ+2 = %d", delta+2)
}

// treeLabel attempts to build an L(2,1)-labeling of the tree with labels
// in 0..span; nil if infeasible.
func treeLabel(g *graph.Graph, span int) Labeling {
	n := g.N()
	s := span + 1 // number of labels
	// Root at 0; compute parent and a reverse-BFS (post) order.
	parent := make([]int, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if parent[u] == -2 {
				parent[u] = v
				queue = append(queue, int(u))
			}
		}
	}
	children := make([][]int, n)
	for v := 1; v < n; v++ {
		children[parent[v]] = append(children[parent[v]], v)
	}

	// feas[v][a*s+b]: subtree below edge (parent(v), v) is labelable with
	// parent label a and v's label b. Only defined for |a-b| ≥ 2.
	feas := make([][]bool, n)
	for v := range feas {
		feas[v] = make([]bool, s*s)
	}
	// Process in reverse BFS order (children before parents).
	for idx := n - 1; idx >= 1; idx-- {
		v := order[idx]
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				if abs(a-b) < 2 {
					continue
				}
				feas[v][a*s+b] = childrenMatch(v, b, a, s, children, feas) >= 0
			}
		}
	}
	// Root: try every label; children must match with "parent label" = -1
	// (encoded as a = b so no exclusion… use a sentinel outside range).
	for b := 0; b < s; b++ {
		if m := childrenMatch(0, b, -10, s, children, feas); m >= 0 {
			// Feasible: reconstruct top-down.
			lab := make(Labeling, n)
			lab[0] = b
			var assign func(v int, aLabel, vLabel int) bool
			assign = func(v, aLabel, vLabel int) bool {
				match := childrenAssignment(v, vLabel, aLabel, s, children, feas)
				if match == nil {
					return false
				}
				for i, c := range children[v] {
					lab[c] = match[i]
					if !assign(c, vLabel, match[i]) {
						return false
					}
				}
				return true
			}
			if assign(0, -10, b) {
				return lab
			}
		}
	}
	return nil
}

// childrenMatch reports (≥ 0) whether the children of v can each get a
// distinct label ℓ with |ℓ−b| ≥ 2, ℓ ≠ a, and feas[child][b][ℓ]. Returns
// the matching size or -1 if some child is unmatchable.
func childrenMatch(v, b, a, s int, children [][]int, feas [][]bool) int {
	match := childrenAssignment(v, b, a, s, children, feas)
	if match == nil {
		return -1
	}
	return len(match)
}

// childrenAssignment returns, for each child of v in order, its assigned
// label — or nil if no full assignment exists. Bipartite matching by
// augmenting paths (children on the left, labels on the right).
func childrenAssignment(v, b, a, s int, children [][]int, feas [][]bool) []int {
	kids := children[v]
	if len(kids) == 0 {
		return []int{}
	}
	// allowed[i] lists labels usable by child i.
	allowed := make([][]int, len(kids))
	for i, c := range kids {
		for l := 0; l < s; l++ {
			if abs(l-b) < 2 || l == a {
				continue
			}
			if feas[c][b*s+l] {
				allowed[i] = append(allowed[i], l)
			}
		}
		if len(allowed[i]) == 0 {
			return nil
		}
	}
	labelOwner := make([]int, s)
	for i := range labelOwner {
		labelOwner[i] = -1
	}
	childLabel := make([]int, len(kids))
	for i := range childLabel {
		childLabel[i] = -1
	}
	visited := make([]bool, s)
	var augment func(i int) bool
	augment = func(i int) bool {
		for _, l := range allowed[i] {
			if visited[l] {
				continue
			}
			visited[l] = true
			if labelOwner[l] < 0 || augment(labelOwner[l]) {
				labelOwner[l] = i
				childLabel[i] = l
				return true
			}
		}
		return false
	}
	for i := range kids {
		for j := range visited {
			visited[j] = false
		}
		if !augment(i) {
			return nil
		}
	}
	return childLabel
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PathLabeling21 returns an optimal L(2,1)-labeling of P_n by the
// classical periodic construction, span PathLambda21(n).
func PathLabeling21(n int) Labeling {
	lab := make(Labeling, n)
	switch {
	case n <= 1:
		// all zero
	case n == 2:
		lab[1] = 2
	case n <= 4:
		// 0,2 span 3 patterns: 1,3,0,2 works for n=4 (check: |1-3|=2 ok,
		// |3-0|=3, |0-2|=2; distance 2: |1-0|=1 ok, |3-2|=1 ok).
		pattern := []int{1, 3, 0, 2}
		copy(lab, pattern[:n])
	default:
		// Period-4 pattern 0,2,4,… : 0,2,4 repeating with shift — the
		// classical span-4 labeling of long paths: 0,2,4,0,2,4,…  fails at
		// distance 2 (0 vs 4 fine, 2 vs 0 diff 2 fine at distance 2? needs
		// only ≥1). Check pairs: adjacent diffs 2,2,4 ≥2 ✓; distance-2
		// diffs 4,2,2 ≥1 ✓.
		for i := range lab {
			lab[i] = (i % 3) * 2
		}
	}
	return lab
}

// CycleLabeling21 returns an optimal span-4 L(2,1)-labeling of C_n
// (n ≥ 3).
func CycleLabeling21(n int) Labeling {
	if n < 3 {
		panic("labeling: cycle needs n >= 3")
	}
	lab := make(Labeling, n)
	// Base period-3 pattern 0,2,4 works when n ≡ 0 (mod 3); otherwise the
	// wrap-around violates constraints and the tail is patched with the
	// classical end gadgets.
	for i := range lab {
		lab[i] = (i % 3) * 2
	}
	switch n % 3 {
	case 1:
		// Prefix (0,2,4)^{(n−4)/3} then the end gadget 0,3,1,4 (n = 4 is
		// the gadget alone).
		copy(lab[n-4:], []int{0, 3, 1, 4})
	case 2:
		// Prefix (0,2,4)^{(n−5)/3} then the end gadget 0,2,4,1,3; the
		// gadget's first three entries coincide with the base pattern, so
		// only the last two positions change.
		copy(lab[n-2:], []int{1, 3})
	}
	return lab
}
