package labeling

import (
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

func TestTreeLambda21VsBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(10)
		g := graph.RandomTree(r, n)
		lab, span, err := TreeLambda21(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(g, L21(), lab); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, want, err := BruteForceExact(g, L21())
		if err != nil {
			t.Fatal(err)
		}
		if span != want {
			t.Fatalf("trial %d (n=%d): tree algorithm %d != brute force %d", trial, n, span, want)
		}
	}
}

func TestTreeLambda21LargeTreesInChangKuoRange(t *testing.T) {
	// For every tree, λ ∈ {Δ+1, Δ+2} (Chang–Kuo / Griggs–Yeh).
	r := rng.New(2)
	for trial := 0; trial < 15; trial++ {
		n := 20 + r.Intn(150)
		g := graph.RandomTree(r, n)
		lab, span, err := TreeLambda21(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, L21(), lab); err != nil {
			t.Fatal(err)
		}
		d := g.MaxDegree()
		if span != d+1 && span != d+2 {
			t.Fatalf("trial %d: tree λ = %d outside {Δ+1, Δ+2} = {%d,%d}", trial, span, d+1, d+2)
		}
	}
}

func TestTreeLambda21KnownValues(t *testing.T) {
	// Stars: λ(K_{1,m}) = m+1 = Δ+1.
	for m := 2; m <= 8; m++ {
		_, span, err := TreeLambda21(graph.Star(m + 1))
		if err != nil {
			t.Fatal(err)
		}
		if span != m+1 {
			t.Fatalf("star with %d leaves: λ = %d, want %d", m, span, m+1)
		}
	}
	// Paths: P2 → 2, P3,P4 → 3, P5+ → 4 = Δ+2.
	for n := 2; n <= 10; n++ {
		_, span, err := TreeLambda21(graph.Path(n))
		if err != nil {
			t.Fatal(err)
		}
		if span != PathLambda21(n) {
			t.Fatalf("P%d: λ = %d, want %d", n, span, PathLambda21(n))
		}
	}
	// Spider with three long legs: Δ = 3, λ should be Δ+1 or Δ+2.
	g := graph.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 5)
	g.AddEdge(5, 6)
	_, span, err := TreeLambda21(g)
	if err != nil {
		t.Fatal(err)
	}
	_, want, _ := BruteForceExact(g, L21())
	if span != want {
		t.Fatalf("spider: %d vs brute %d", span, want)
	}
}

func TestTreeLambda21RejectsNonTrees(t *testing.T) {
	if _, _, err := TreeLambda21(graph.Cycle(4)); err == nil {
		t.Fatal("cycle must be rejected")
	}
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, _, err := TreeLambda21(g); err == nil {
		t.Fatal("forest must be rejected")
	}
}

func TestTreeTrivialSizes(t *testing.T) {
	lab, span, err := TreeLambda21(graph.New(0))
	if err != nil || span != 0 || len(lab) != 0 {
		t.Fatal("empty tree")
	}
	lab, span, err = TreeLambda21(graph.New(1))
	if err != nil || span != 0 || lab[0] != 0 {
		t.Fatal("single vertex")
	}
	_, span, err = TreeLambda21(graph.Path(2))
	if err != nil || span != 2 {
		t.Fatalf("P2: %d %v", span, err)
	}
}

func TestPathLabeling21Construction(t *testing.T) {
	for n := 0; n <= 40; n++ {
		lab := PathLabeling21(n)
		if n == 0 {
			continue
		}
		g := graph.Path(n)
		if err := Verify(g, L21(), lab); err != nil {
			t.Fatalf("P%d: %v", n, err)
		}
		if lab.Span() != PathLambda21(n) {
			t.Fatalf("P%d: constructed span %d, formula %d", n, lab.Span(), PathLambda21(n))
		}
	}
}

func TestCycleLabeling21Construction(t *testing.T) {
	for n := 3; n <= 60; n++ {
		lab := CycleLabeling21(n)
		g := graph.Cycle(n)
		if err := Verify(g, L21(), lab); err != nil {
			t.Fatalf("C%d (%v): %v", n, lab, err)
		}
		if lab.Span() != 4 {
			t.Fatalf("C%d: constructed span %d, want 4", n, lab.Span())
		}
	}
}
