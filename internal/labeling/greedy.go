package labeling

import (
	"sort"

	"lpltsp/internal/graph"
)

// GreedyOrder names a vertex ordering strategy for the first-fit heuristic.
type GreedyOrder string

const (
	// OrderDegree processes vertices by decreasing degree (classic
	// frequency-assignment heuristic order).
	OrderDegree GreedyOrder = "degree"
	// OrderBFS processes vertices in breadth-first order from vertex 0.
	OrderBFS GreedyOrder = "bfs"
	// OrderNatural processes vertices 0,1,2,…
	OrderNatural GreedyOrder = "natural"
)

// GreedyFirstFit is the classical baseline the paper's TSP engines are
// compared against: process vertices in the given order and give each the
// smallest nonnegative label consistent with all already-labeled vertices
// within the distance horizon. It works on any graph and any p.
func GreedyFirstFit(g *graph.Graph, p Vector, order GreedyOrder) (Labeling, int, error) {
	return GreedyFirstFitMatrix(g, g.AllPairsDistances(), p, order)
}

// GreedyFirstFitMatrix is GreedyFirstFit with a precomputed distance
// matrix, for callers (the method planner) that already paid for the APSP.
func GreedyFirstFitMatrix(g *graph.Graph, dm *graph.DistMatrix, p Vector, order GreedyOrder) (Labeling, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.N()
	if n == 0 {
		return Labeling{}, 0, nil
	}
	pi := greedyOrdering(g, order)
	k := len(p)
	l := make(Labeling, n)
	for i := range l {
		l[i] = -1
	}
	span := 0
	// forbidden[x] is scratch marking labels excluded for the current
	// vertex. Intervals [l(u)-p_d+1, l(u)+p_d-1] are excluded.
	for _, v := range pi {
		row := dm.Row(v)
		type iv struct{ lo, hi int }
		var excluded []iv
		for u := 0; u < n; u++ {
			if l[u] < 0 || u == v {
				continue
			}
			d := int(row[u])
			if row[u] == graph.Unreachable || d > k || p[d-1] == 0 {
				continue
			}
			excluded = append(excluded, iv{l[u] - p[d-1] + 1, l[u] + p[d-1] - 1})
		}
		sort.Slice(excluded, func(a, b int) bool { return excluded[a].lo < excluded[b].lo })
		lab := 0
		for _, e := range excluded {
			if e.hi < lab {
				continue
			}
			if e.lo > lab {
				break // gap found
			}
			lab = e.hi + 1
		}
		l[v] = lab
		if lab > span {
			span = lab
		}
	}
	return l, span, nil
}

func greedyOrdering(g *graph.Graph, order GreedyOrder) []int {
	n := g.N()
	pi := make([]int, n)
	for i := range pi {
		pi[i] = i
	}
	switch order {
	case OrderDegree:
		sort.SliceStable(pi, func(a, b int) bool {
			return g.Degree(pi[a]) > g.Degree(pi[b])
		})
	case OrderBFS:
		if n == 0 {
			return pi
		}
		dist := make([]uint16, n)
		queue := make([]int32, n)
		g.BFSFrom(0, dist, queue)
		sort.SliceStable(pi, func(a, b int) bool {
			da, db := dist[pi[a]], dist[pi[b]]
			if da != db {
				return da < db
			}
			return pi[a] < pi[b]
		})
	case OrderNatural:
		// identity
	}
	return pi
}
