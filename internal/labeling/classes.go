package labeling

// Known closed-form λ_{2,1} values for the classical graph classes the
// paper cites as polynomially solvable (Griggs & Yeh). These are the
// golden values experiment E12 checks the exact engines against.

// PathLambda21 returns λ_{2,1}(P_n).
func PathLambda21(n int) int {
	switch {
	case n <= 0:
		return 0
	case n == 1:
		return 0
	case n == 2:
		return 2
	case n <= 4:
		return 3
	default:
		return 4
	}
}

// CycleLambda21 returns λ_{2,1}(C_n) = 4 for every n ≥ 3.
func CycleLambda21(n int) int {
	if n < 3 {
		panic("labeling: cycle needs n >= 3")
	}
	return 4
}

// CompleteLambda21 returns λ_{2,1}(K_n) = 2(n−1).
func CompleteLambda21(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1)
}

// StarLambda21 returns λ_{2,1}(K_{1,n−1}) = n for a star on n ≥ 2 vertices
// (hub plus n−1 leaves: leaves pairwise at distance 2 get distinct labels
// 2..n, hub gets 0).
func StarLambda21(n int) int {
	if n <= 1 {
		return 0
	}
	if n == 2 {
		return 2
	}
	return n
}

// WheelLambda21 returns λ_{2,1}(W_n) for the wheel on n ≥ 6 total vertices
// (hub + cycle C_{n−1}): the value is n, realized by putting the hub at one
// end of a Hamiltonian path of the complement of C_{n−1}.
// (W_4 = K_4 has λ = 6 and W_5 has λ = 6; both are handled by the exact
// engine in tests rather than by formula.)
func WheelLambda21(n int) int {
	if n < 6 {
		panic("labeling: wheel formula valid for n >= 6")
	}
	return n
}
