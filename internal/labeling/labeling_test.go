package labeling

import (
	"strings"
	"testing"

	"lpltsp/internal/graph"
	"lpltsp/internal/rng"
)

func TestVectorValidate(t *testing.T) {
	if err := (Vector{}).Validate(); err == nil {
		t.Fatal("empty vector must fail")
	}
	if err := (Vector{2, -1}).Validate(); err == nil {
		t.Fatal("negative entry must fail")
	}
	if err := L21().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	p := Vector{2, 1}
	if pmin, pmax := p.MinMax(); pmin != 1 || pmax != 2 {
		t.Fatal("MinMax")
	}
	if !p.SatisfiesReductionCondition() {
		t.Fatal("(2,1) satisfies pmax ≤ 2pmin")
	}
	if (Vector{3, 1}).SatisfiesReductionCondition() {
		t.Fatal("(3,1) violates the condition")
	}
	if got := p.Scale(3); got[0] != 6 || got[1] != 3 {
		t.Fatal("Scale")
	}
	if Ones(3).K() != 3 || Ones(3)[2] != 1 {
		t.Fatal("Ones")
	}
}

func TestVerify(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	p := L21()
	// Valid: 0,2,4.
	if err := Verify(g, p, Labeling{0, 2, 4}); err != nil {
		t.Fatal(err)
	}
	// Adjacent too close.
	if err := Verify(g, p, Labeling{0, 1, 4}); err == nil {
		t.Fatal("adjacent labels 0,1 must fail for p=(2,1)")
	}
	// Distance-2 equal labels.
	if err := Verify(g, p, Labeling{0, 2, 0}); err == nil {
		t.Fatal("distance-2 equal labels must fail")
	}
	// Wrong length.
	if err := Verify(g, p, Labeling{0, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	// Negative label.
	if err := Verify(g, p, Labeling{-1, 2, 4}); err == nil {
		t.Fatal("negative label must fail")
	}
	// Pairs beyond the horizon are unconstrained.
	g5 := graph.Path(5)
	if err := Verify(g5, p, Labeling{0, 2, 4, 0, 2}); err != nil {
		t.Fatalf("beyond-horizon reuse should be legal: %v", err)
	}
}

func TestBruteForceKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P1", graph.Path(1), PathLambda21(1)},
		{"P2", graph.Path(2), PathLambda21(2)},
		{"P3", graph.Path(3), PathLambda21(3)},
		{"P4", graph.Path(4), PathLambda21(4)},
		{"P5", graph.Path(5), PathLambda21(5)},
		{"P7", graph.Path(7), PathLambda21(7)},
		{"C3", graph.Cycle(3), CycleLambda21(3)},
		{"C4", graph.Cycle(4), CycleLambda21(4)},
		{"C5", graph.Cycle(5), CycleLambda21(5)},
		{"C8", graph.Cycle(8), CycleLambda21(8)},
		{"K4", graph.Complete(4), CompleteLambda21(4)},
		{"K6", graph.Complete(6), CompleteLambda21(6)},
		{"Star5", graph.Star(5), StarLambda21(5)},
		{"Star8", graph.Star(8), StarLambda21(8)},
		{"W6", graph.Wheel(6), WheelLambda21(6)},
		{"W7", graph.Wheel(7), WheelLambda21(7)},
		{"W4=K4", graph.Wheel(4), 6},
		{"W5", graph.Wheel(5), 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lab, span, err := BruteForceExact(tc.g, L21())
			if err != nil {
				t.Fatal(err)
			}
			if span != tc.want {
				t.Fatalf("λ_{2,1} = %d, want %d", span, tc.want)
			}
			if err := Verify(tc.g, L21(), lab); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBruteForceRejectsLargeN(t *testing.T) {
	if _, _, err := BruteForceExact(graph.Complete(BruteForceMaxN+1), L21()); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestBruteForceGeneralP(t *testing.T) {
	// L(1,1) on a star = coloring of K_{1,m}²: hub + leaves all pairwise
	// within distance 2 → n distinct labels → span n−1.
	for n := 2; n <= 7; n++ {
		_, span, err := BruteForceExact(graph.Star(n), Ones(2))
		if err != nil {
			t.Fatal(err)
		}
		if span != n-1 {
			t.Fatalf("L(1,1) star %d: span %d, want %d", n, span, n-1)
		}
	}
	// p with a zero entry: L(0,1) on K3: adjacent pairs unconstrained.
	_, span, err := BruteForceExact(graph.Complete(3), Vector{0, 1})
	if err != nil || span != 0 {
		t.Fatalf("L(0,1) on K3: span %d err %v", span, err)
	}
}

func TestExactForOrdering(t *testing.T) {
	g := graph.Path(3)
	p := L21()
	// Ordering 0,1,2: l(0)=0, l(1)=2, l(2)=4 → span 4.
	_, span, err := ExactForOrdering(g, p, []int{0, 1, 2})
	if err != nil || span != 4 {
		t.Fatalf("span %d err %v, want 4", span, err)
	}
	// Ordering 0,2,1: l(0)=0, l(2)=1 (distance 2), l(1)=3 → span 3 = λ(P3).
	_, span, err = ExactForOrdering(g, p, []int{0, 2, 1})
	if err != nil || span != 3 {
		t.Fatalf("span %d err %v, want 3", span, err)
	}
	if _, _, err := ExactForOrdering(g, p, []int{0, 1}); err == nil {
		t.Fatal("short ordering must fail")
	}
}

// TestBruteForceEqualsMinOverOrderings: λ = min over orderings of the
// greedy completion (the structural fact BruteForceExact relies on),
// verified independently on tiny graphs.
func TestBruteForceEqualsMinOverOrderings(t *testing.T) {
	r := rng.New(20)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(5)
		g := graph.GNP(r, n, 0.5)
		if !g.IsConnected() {
			continue
		}
		p := Vector{1 + r.Intn(3), 1 + r.Intn(3)}
		_, want, err := BruteForceExact(g, p)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate orderings explicitly.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := -1
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				_, span, err := ExactForOrdering(g, p, perm)
				if err != nil {
					t.Fatal(err)
				}
				if best < 0 || span < best {
					best = span
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if best != want {
			t.Fatalf("trial %d: min-over-orderings %d != brute %d (p=%v)", trial, best, want, p)
		}
	}
}

func TestGreedyFirstFit(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(25)
		g := graph.GNP(r, n, 0.3)
		p := Vector{2, 1}
		for _, ord := range []GreedyOrder{OrderDegree, OrderBFS, OrderNatural} {
			lab, span, err := GreedyFirstFit(g, p, ord)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, p, lab); err != nil {
				t.Fatalf("order %s: %v", ord, err)
			}
			if lab.Span() != span {
				t.Fatalf("span accounting: %d vs %d", lab.Span(), span)
			}
		}
	}
}

func TestGreedyRespectsGriggsYehBound(t *testing.T) {
	// First-fit in any order satisfies λ ≤ Δ²+2Δ for p=(2,1)? The classical
	// argument bounds the number of forbidden labels per vertex:
	// each of ≤Δ neighbors forbids ≤3 labels, each of ≤Δ(Δ−1)
	// distance-2 vertices forbids 1 → first-fit span ≤ 3Δ + Δ(Δ−1) = Δ²+2Δ.
	r := rng.New(22)
	for trial := 0; trial < 30; trial++ {
		g := graph.GNP(r, 2+r.Intn(30), 0.25)
		_, span, err := GreedyFirstFit(g, L21(), OrderDegree)
		if err != nil {
			t.Fatal(err)
		}
		if ub := GriggsYehUpperBound21(g); span > ub {
			t.Fatalf("greedy span %d exceeds Δ²+2Δ = %d", span, ub)
		}
	}
}

func TestBoundsSandwichOptimum(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		g := graph.RandomSmallDiameter(r, n, 2, 0.4)
		p := L21()
		_, opt, err := BruteForceExact(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if lb := CliqueLowerBound(g, p); lb > opt {
			t.Fatalf("clique LB %d > optimum %d", lb, opt)
		}
		if ub := GreedyUpperBound(g, p); ub < opt {
			t.Fatalf("greedy UB %d < optimum %d", ub, opt)
		}
	}
}

func TestSpanOfEmpty(t *testing.T) {
	if (Labeling{}).Span() != 0 {
		t.Fatal("empty labeling span")
	}
	lab, span, err := BruteForceExact(graph.New(0), L21())
	if err != nil || span != 0 || len(lab) != 0 {
		t.Fatal("empty graph")
	}
}

func TestVerifyErrorMessageNamesPair(t *testing.T) {
	g := graph.Path(2)
	err := Verify(g, L21(), Labeling{0, 1})
	if err == nil || !strings.Contains(err.Error(), "p_1") {
		t.Fatalf("error should name the violated constraint: %v", err)
	}
}

func TestMergeComponents(t *testing.T) {
	// Two components of a 5-vertex graph: {0,2,4} and {1,3}.
	comps := [][]int{{0, 2, 4}, {1, 3}}
	labs := []Labeling{{0, 2, 4}, {0, 3}}
	l, span, err := MergeComponents(5, comps, labs)
	if err != nil {
		t.Fatal(err)
	}
	if span != 4 {
		t.Fatalf("merged span %d, want 4", span)
	}
	want := Labeling{0, 0, 2, 3, 4}
	for v := range want {
		if l[v] != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, l[v], want[v])
		}
	}
	// Error paths: length mismatch, overlap, out of range, missing vertex.
	if _, _, err := MergeComponents(5, comps, labs[:1]); err == nil {
		t.Fatal("component/labeling count mismatch accepted")
	}
	if _, _, err := MergeComponents(5, [][]int{{0, 2}, {1, 3}}, labs); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := MergeComponents(5, [][]int{{0, 2, 4}, {1, 0}}, labs); err == nil {
		t.Fatal("overlapping components accepted")
	}
	if _, _, err := MergeComponents(5, [][]int{{0, 2, 7}, {1, 3}}, labs); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, _, err := MergeComponents(6, comps, labs); err == nil {
		t.Fatal("missing vertex accepted")
	}
}
