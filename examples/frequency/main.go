// Frequency assignment: the motivating application of L(2,1)-labeling
// (Hale 1980, Roberts 1991). Transmitters that are "very close"
// (adjacent) must get channels ≥ 2 apart; transmitters that are "close"
// (distance 2) must get different channels. The span is the bandwidth.
//
// The scenario: a dense metro network of n transmitters around a backbone
// hub — interference graphs of such networks have small diameter, which is
// exactly the regime where the paper's reduction applies. We solve it
// exactly through the reduction, then show what the classical greedy
// heuristic would have paid in extra bandwidth.
package main

import (
	"fmt"
	"log"

	"lpltsp"
)

func main() {
	const n = 16
	// Interference graph: diameter ≤ 2 (urban core with a relay hub).
	g := lpltsp.RandomDiameter2(4, n, 0.5)
	p := lpltsp.L21()

	exact, err := lpltsp.Solve(g, p, nil)
	if err != nil {
		log.Fatal(err)
	}
	_, greedySpan, err := lpltsp.GreedyFirstFit(g, p)
	if err != nil {
		log.Fatal(err)
	}
	heur, err := lpltsp.Heuristic(g, p, &lpltsp.ChainedOptions{Restarts: 4, Kicks: 30, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transmitters: %d, interference links: %d, diameter ≤ 2\n", g.N(), g.M())
	fmt.Printf("optimal bandwidth (λ_{2,1}):        %d channels 0..%d\n", exact.Span, exact.Span)
	fmt.Printf("chained TSP heuristic:              %d\n", heur.Span)
	fmt.Printf("classical greedy first-fit:         %d (+%d channels wasted)\n",
		greedySpan, greedySpan-exact.Span)

	fmt.Println("\nchannel assignment (optimal):")
	for v, ch := range exact.Labeling {
		fmt.Printf("  transmitter %2d -> channel %2d\n", v, ch)
	}

	// Double-check: no interference constraint violated.
	if err := lpltsp.Verify(g, p, exact.Labeling); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nno interference constraints violated ✓")
}
