// Trees: the boundary of the TSP reduction, made concrete. The paper's
// introduction contrasts class-specific algorithms (trees are solvable in
// polynomial time, but "the algorithm … is quite involved" and exploits
// the tree structure itself) with the graph-agnostic TSP route, which
// needs diam(G) ≤ k. This example shows both sides and how the method
// planner stitches them together: Solve routes a 1000-vertex tree to the
// exact tree algorithm automatically (Result.Method = "tree"), while
// pinning Options.Method to the reduction reproduces the classical typed
// rejection — and on tiny trees, the reduction-free brute force confirms
// both.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"lpltsp"
)

func main() {
	// A 1000-vertex random tree: far beyond any 2ⁿ method.
	big := lpltsp.RandomTreeGraph(7, 1000)
	start := time.Now()
	lab, span, err := lpltsp.TreeLambda21(big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random tree n=%d, Δ=%d: λ_{2,1} = %d (Δ+1=%d, Δ+2=%d) in %v\n",
		big.N(), big.MaxDegree(), span, big.MaxDegree()+1, big.MaxDegree()+2,
		time.Since(start).Round(time.Millisecond))
	if err := lpltsp.Verify(big, lpltsp.L21(), lab); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1000-vertex labeling verified ✓")

	// The planner reaches the same algorithm on its own: the reduction is
	// inapplicable (trees have large diameter), so Solve routes to the
	// tree method with exact provenance.
	res, err := lpltsp.Solve(big, lpltsp.L21(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner route: method=%s exact=%v span=%d\n", res.Method, res.Exact, res.Span)
	if res.Method != lpltsp.MethodTree || res.Span != span {
		log.Fatalf("expected the tree route with span %d, got %s/%d", span, res.Method, res.Span)
	}

	// Pinning the reduction restores the classical typed rejection.
	if _, err := lpltsp.Solve(big, lpltsp.L21(), &lpltsp.Options{Method: lpltsp.MethodReduction}); errors.Is(err, lpltsp.ErrDiameterExceedsK) {
		fmt.Printf("pinned reduction correctly rejects the tree: %v\n", err)
	} else {
		log.Fatalf("expected ErrDiameterExceedsK, got %v", err)
	}

	// On tiny trees both routes agree.
	small := lpltsp.RandomTreeGraph(8, 9)
	_, s1, err := lpltsp.TreeLambda21(small)
	if err != nil {
		log.Fatal(err)
	}
	_, s2, err := lpltsp.BruteForceExact(small, lpltsp.L21())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n9-vertex tree: tree algorithm λ=%d, brute force λ=%d", s1, s2)
	if s1 != s2 {
		log.Fatal(" — MISMATCH")
	}
	fmt.Println(" — agree ✓")

	// Stars are trees with diameter 2: there the reduction DOES apply,
	// and all routes coincide.
	star := lpltsp.StarGraph(8)
	_, s3, err := lpltsp.TreeLambda21(star)
	if err != nil {
		log.Fatal(err)
	}
	s4, err := lpltsp.Lambda(star, lpltsp.L21())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star K_{1,7}: tree algorithm λ=%d, TSP reduction λ=%d\n", s3, s4)
	if s3 != s4 {
		log.Fatal("route mismatch on star")
	}
}
