// Engine comparison: the paper's practical claim is that high-performance
// TSP heuristics can serve as engines for L(p)-labeling on small-diameter
// graphs. This example runs every engine on one mid-size instance and
// reports span and wall time, with the classical greedy labeling as the
// baseline the TSP route is supposed to beat.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lpltsp"
)

func main() {
	const n = 150
	g := lpltsp.RandomSmallDiameter(2023, n, 4, 2.0/n)
	p := lpltsp.Vector{2, 2, 1, 1}
	lowerBound := (n - 1) * 1 // every consecutive pair costs ≥ pmin = 1

	fmt.Printf("instance: n=%d m=%d, k=4, p=%v, trivial lower bound %d\n\n",
		g.N(), g.M(), p, lowerBound)
	fmt.Printf("%-22s %8s %12s\n", "engine", "span", "time")

	for _, algo := range []lpltsp.Algorithm{
		lpltsp.AlgoNearestNeighbor,
		lpltsp.AlgoGreedyEdge,
		lpltsp.AlgoTwoOpt,
		lpltsp.AlgoThreeOpt,
		lpltsp.AlgoChristofides,
		lpltsp.AlgoChained,
	} {
		start := time.Now()
		res, err := lpltsp.Solve(g, p, &lpltsp.Options{
			Algorithm: algo,
			Chained:   &lpltsp.ChainedOptions{Restarts: 8, Kicks: 60, Seed: 1},
			Verify:    true,
		})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("%-22s %8d %12v\n", algo, res.Span, time.Since(start).Round(time.Microsecond))
	}

	// The portfolio races the engines above under one deadline and keeps
	// the best verified labeling — the serving-path way to run them.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	res, err := lpltsp.Portfolio(ctx, g, p)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8d %12v  (won by %s)\n",
		"portfolio(2s)", res.Span, time.Since(start).Round(time.Microsecond), res.Winner)

	start = time.Now()
	_, span, err := lpltsp.GreedyFirstFit(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8d %12v\n", "greedy-labeling (base)", span, time.Since(start).Round(time.Microsecond))
	fmt.Println("\nlower is better; the trivial bound shows how close the TSP engines get.")
}
