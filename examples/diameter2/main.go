// Diameter-2 structure (Corollary 2 and Figure 2): on a diameter-2 graph,
// L(p,q)-labeling is PARTITION INTO PATHS in disguise. This example makes
// the A_π/B_π decomposition of Figure 2 visible: the optimal ordering
// decomposes into maximal runs of weight-min edges (paths in G or Ḡ), and
// the span is (n−1)·min + (max−min)·(#paths − 1).
package main

import (
	"fmt"
	"log"

	"lpltsp"
)

func main() {
	g := lpltsp.RandomDiameter2(9, 12, 0.3)
	n := g.N()

	for _, pq := range [][2]int{{1, 2}, {2, 1}} {
		p, q := pq[0], pq[1]
		res, err := lpltsp.SolveDiameter2(g, p, q)
		if err != nil {
			log.Fatal(err)
		}
		host := "G"
		if res.OnComplement {
			host = "complement of G"
		}
		lo, hi := p, q
		if lo > hi {
			lo, hi = hi, lo
		}
		s := len(res.Paths)
		fmt.Printf("p=%d q=%d: λ = (n−1)·%d + (%d−%d)·(s−1) = %d with s=%d paths in %s\n",
			p, q, lo, hi, lo, (n-1)*lo+(hi-lo)*(s-1), s, host)
		for i, path := range res.Paths {
			fmt.Printf("  P%d: %v\n", i+1, path)
		}
		// Cross-check against the generic exact engine.
		want, err := lpltsp.Lambda(g, lpltsp.Vector{p, q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  span %d == reduction-exact %d ✓\n\n", res.Span, want)
		if res.Span != want {
			log.Fatal("Corollary 2 mismatch!")
		}
	}

	// Theorem 4 bonus: L(1,1) via coloring G², FPT in nd.
	lab, span, err := lpltsp.L1Exact(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L(1,1): λ = %d (G² is complete on diameter-2 graphs → λ = n−1 = %d)\n",
		span, n-1)
	if err := lpltsp.Verify(g, lpltsp.Ones(2), lab); err != nil {
		log.Fatal(err)
	}
}
