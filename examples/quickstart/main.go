// Quickstart: compute an optimal L(2,1)-labeling of a small graph through
// the TSP reduction, verify it, and compare with the 1.5-approximation.
package main

import (
	"fmt"
	"log"

	"lpltsp"
)

func main() {
	// The paper's Figure 1 graph: 5 vertices a..e, diameter 3.
	g := lpltsp.Figure1Graph()
	p := lpltsp.Vector{2, 2, 1} // one constraint per distance 1, 2, 3

	// Exact: reduction → Held–Karp → labeling via prefix sums.
	res, err := lpltsp.Solve(g, p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ_p = %d (optimal: %v)\n", res.Span, res.Exact)
	fmt.Printf("visit order (Hamiltonian path of H): %v\n", []int(res.Tour))
	for v, l := range res.Labeling {
		fmt.Printf("  vertex %c gets label %d\n", 'a'+v, l)
	}
	if err := lpltsp.Verify(g, p, res.Labeling); err != nil {
		log.Fatal(err)
	}
	fmt.Println("labeling verified against the definition ✓")

	// Polynomial-time 1.5-approximation (Corollary 1).
	apx, err := lpltsp.Approximate(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1.5-approximation span: %d (ratio %.2f)\n",
		apx.Span, float64(apx.Span)/float64(res.Span))

	// A graph that violates the preconditions produces a typed error.
	if _, err := lpltsp.Solve(lpltsp.PathGraph(10), p, nil); err != nil {
		fmt.Printf("P10 rejected as expected: %v\n", err)
	}
}
