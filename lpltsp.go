// Package lpltsp solves distance-constrained graph labeling problems
// (L(p₁,…,p_k)-LABELING) on small-diameter graphs by reduction to METRIC
// PATH TSP, implementing the algorithm suite of
//
//	Hanaka, Ono, Sugiyama: "Solving Distance-constrained Labeling
//	Problems for Small Diameter Graphs via TSP", IPDPS 2023
//	(arXiv:2303.01290).
//
// An L(p)-labeling assigns nonnegative integer labels to vertices so that
// vertices at distance d receive labels differing by at least p_d; the
// goal is to minimize the span (largest label). For p = (2,1) this is the
// classical frequency-assignment problem. When the graph's diameter is at
// most k = len(p) and pmax ≤ 2·pmin, the problem is equivalent to finding
// a minimum-weight Hamiltonian path of the complete graph weighted by
// w(u,v) = p_{dist(u,v)} (Theorem 2); this package builds that reduction
// and drives exact, approximate, and heuristic TSP engines through it.
//
// # The planned pipeline
//
// Solve is total over inputs: a method planner probes every instance
// (connectivity, diameter via one APSP, the shape of p) and routes it to
// the cheapest applicable algorithm from the paper's suite —
//
//   - the Theorem 2 TSP reduction (exact engines, the 1.5-approximation,
//     heuristics, or the portfolio race),
//   - the Corollary 2 PARTITION INTO PATHS route on diameter-2 graphs,
//   - the Theorem 4 FPT coloring for uniform p = (c,…,c),
//   - the exact Chang–Kuo-style tree algorithm for L(2,1) on trees,
//   - the Corollary 3 pmax-approximation when the reduction's hypotheses
//     fail, and
//   - a first-fit fallback so no input is ever rejected.
//
// Disconnected graphs are decomposed into components solved independently
// (λ is the max over components). Result.Method, Result.Exact, and
// Result.Approx record the route taken and its guarantee; Explain returns
// the routing decision — every method's applicability verdict — without
// solving. Options.Method pins a method (restoring the classical typed
// errors when it does not apply) and Options.Algorithm pins a TSP engine,
// which biases the planner toward the reduction.
//
// # Quick start
//
//	g := lpltsp.NewGraph(4)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//	g.AddEdge(3, 0)
//	res, err := lpltsp.Solve(g, lpltsp.L21(), nil) // exact λ_{2,1}(C4) = 4
//
// # Deadlines, portfolios, and batches
//
// Every solver entry point has a context form. The TSP engines behind the
// reduction check for cancellation cooperatively, and the anytime engines
// (branch and bound, the chained local search, the 2-opt family) return
// their best-so-far labeling when the deadline fires instead of failing:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	res, err := lpltsp.SolveContext(ctx, g, p, &lpltsp.Options{Algorithm: lpltsp.AlgoChained})
//
// Portfolio races exact and heuristic engines concurrently over one shared
// reduction and returns the best verified labeling — the exact engine
// ends the race when it finishes, the heuristics cover the case where the
// deadline fires first:
//
//	res, err := lpltsp.Portfolio(ctx, g, p) // or Options{Algorithm: lpltsp.AlgoPortfolio}
//
// SolveBatch pushes many instances through a bounded worker pool and
// streams results as they complete:
//
//	items := []lpltsp.BatchItem{{ID: "a", G: g1, P: p}, {ID: "b", G: g2, P: p}}
//	for br := range lpltsp.SolveBatch(ctx, items, nil) {
//		// br.ID, br.Result, br.Err
//	}
//
// Engines are pluggable: everything under Options.Algorithm is resolved
// through a registry, so an external package can register a new engine
// and have Solve, Portfolio, and the CLIs pick it up by name. Methods are
// pluggable the same way one layer up (core.RegisterMethod).
//
// # Memoization
//
// Verified results are memoized in a process-wide sharded LRU keyed by a
// canonical instance fingerprint (structural graph hash, p, and the
// result-affecting options), consulted by Solve, SolveBatch, and
// Portfolio: steady-state traffic with duplicate instances returns the
// cached labeling with Result.CacheHit set instead of redoing the
// reduction. The cache is fronted by singleflight coalescing — N
// concurrent identical solves run exactly one underlying computation;
// the followers get the leader's result with Result.Coalesced set and
// the shared solve is cancelled only when the last interested caller
// disconnects. Cache entries are deep copies both ways and hold no
// distance matrices, so hits are race-free and the footprint stays
// linear. Opt out per solve with Options.NoCache; observe and size it
// with CacheStats, ResetCache, and SetCacheCapacity.
//
// # Performance
//
// Reduced instances are stored compactly: since w(u,v) = p[dist(u,v)-1]
// takes at most k distinct values, the solver keeps only the uint16
// distance matrix (shared read-only by all concurrent engines) plus a
// k-entry weight table instead of a dense n²·int64 matrix — 5× less
// instance memory — and the engines exploit the weight-class structure
// (bucketed neighbor lists, counting-sorted edge sweeps) and pool all
// hot-path scratch, so portfolio races and steady-state batches allocate
// essentially only their results.
//
// Beyond the core reduction the package exposes the paper's companion
// results: the 1.5-approximation and O(2ⁿn²) exact algorithm (Corollary
// 1), the PARTITION INTO PATHS equivalence on diameter-2 graphs
// (Corollary 2), the FPT algorithm for L(1,…,1) via coloring powers
// (Theorem 4), the pmax-approximation (Corollary 3), and the graph
// parameters nd and mw with their propositions.
package lpltsp

import (
	"context"
	"io"
	"net/http"

	"lpltsp/internal/core"
	"lpltsp/internal/graph"
	"lpltsp/internal/labeling"
	"lpltsp/internal/modular"
	"lpltsp/internal/service"
	"lpltsp/internal/tsp"
)

// Graph is a simple undirected graph on vertices 0..N()-1.
type Graph = graph.Graph

// NewGraph returns an edgeless graph on n vertices. Add edges with
// AddEdge; all query methods normalize lazily.
func NewGraph(n int) *Graph { return graph.New(n) }

// Vector is the constraint vector p = (p1,…,pk).
type Vector = labeling.Vector

// Labeling assigns a label to every vertex.
type Labeling = labeling.Labeling

// Result is a solver outcome: the labeling, its span, the underlying
// Hamiltonian path, and provenance.
type Result = core.Result

// Options configures Solve. Zero value = exact engine with no extras.
type Options = core.Options

// Algorithm names a TSP engine; see the Algo* constants.
type Algorithm = tsp.Algorithm

// TSP engine names accepted in Options.Algorithm.
const (
	// AlgoExact picks Held–Karp or branch and bound automatically.
	AlgoExact = tsp.AlgoExact
	// AlgoHeldKarp is the O(2ⁿn²) dynamic program of Corollary 1.
	AlgoHeldKarp = tsp.AlgoHeldKarp
	// AlgoBnB is branch and bound with MST lower bounds.
	AlgoBnB = tsp.AlgoBnB
	// AlgoChristofides is the polynomial 1.5-approximation of Corollary 1.
	AlgoChristofides = tsp.AlgoChristofides
	// AlgoChained is the chained local-search heuristic (the paper's
	// "use Lin–Kernighan-style engines" recipe).
	AlgoChained = tsp.AlgoChained
	// AlgoTwoOpt is greedy construction + 2-opt + Or-opt.
	AlgoTwoOpt = tsp.AlgoTwoOpt
	// AlgoThreeOpt is AlgoTwoOpt plus a 3-opt polishing pass.
	AlgoThreeOpt = tsp.AlgoThreeOpt
	// AlgoNearestNeighbor is multi-start nearest neighbor.
	AlgoNearestNeighbor = tsp.AlgoNearestNeighbor
	// AlgoGreedyEdge is greedy edge construction.
	AlgoGreedyEdge = tsp.AlgoGreedyEdge
	// AlgoPortfolio races a roster of engines concurrently and keeps the
	// best verified labeling (see Portfolio).
	AlgoPortfolio = core.AlgoPortfolio
)

// Algorithms lists all registered engine names (AlgoPortfolio is a
// meta-engine composed of these and is not listed).
func Algorithms() []Algorithm { return tsp.Algorithms() }

// ChainedOptions tunes the chained heuristic engine.
type ChainedOptions = tsp.ChainedOptions

// L21 returns the classical p = (2,1).
func L21() Vector { return labeling.L21() }

// Ones returns p = (1,…,1) of dimension k.
func Ones(k int) Vector { return labeling.Ones(k) }

// Reduction-applicability errors (test with errors.Is). The planner
// routes around these conditions automatically; they are returned by the
// direct entry points (Portfolio, SolveDiameter2) and by solves that pin
// Options.Method to a method whose hypotheses fail.
var (
	ErrDisconnected      = core.ErrDisconnected
	ErrDiameterExceedsK  = core.ErrDiameterExceedsK
	ErrConditionViolated = core.ErrConditionViolated
)

// Method names a solving method in the planner's registry; see the
// Method* constants and Options.Method.
type Method = core.MethodName

// Methods of the planner's registry, accepted in Options.Method.
const (
	// MethodReduction is the Theorem 2 TSP reduction.
	MethodReduction = core.MethodReduction
	// MethodTree is the exact L(2,1) tree algorithm.
	MethodTree = core.MethodTree
	// MethodDiameter2 is the Corollary 2 PARTITION INTO PATHS route.
	MethodDiameter2 = core.MethodDiameter2
	// MethodFPTColoring is the Theorem 4 coloring of Gᵏ for uniform p.
	MethodFPTColoring = core.MethodFPTColoring
	// MethodPmaxApprox is the Corollary 3 pmax-approximation fallback.
	MethodPmaxApprox = core.MethodPmaxApprox
	// MethodGreedy is the always-applicable first-fit fallback.
	MethodGreedy = core.MethodGreedy
	// MethodComponents tags decomposed solves of disconnected inputs.
	MethodComponents = core.MethodComponents
	// MethodTrivial tags the n ≤ 1 / pmax = 0 fast path.
	MethodTrivial = core.MethodTrivial
)

// Plan is a routing decision: the chosen method plus every registered
// method's applicability verdict (and per-component sub-plans for
// disconnected inputs). Results carry the plan that produced them.
type Plan = core.Plan

// Candidate is one method's applicability verdict inside a Plan.
type Candidate = core.Candidate

// Explain plans an instance without solving it: which method Solve would
// route it to, and why each method does or does not apply. This is the
// API behind lplsolve -explain.
func Explain(g *Graph, p Vector, opts *Options) (*Plan, error) {
	return core.Explain(context.Background(), g, p, opts)
}

// CacheStats returns the hit/miss/eviction/entry counters of the
// process-wide solve cache consulted by Solve, SolveBatch, and Portfolio.
func CacheStats() core.CacheStats { return core.SolveCacheStats() }

// ResetCache empties the solve cache and zeroes its counters.
func ResetCache() { core.ResetSolveCache() }

// SetCacheCapacity resets the solve cache with a new entry budget;
// capacity ≤ 0 disables caching process-wide.
func SetCacheCapacity(capacity int) { core.SetSolveCacheCapacity(capacity) }

// MethodCounts returns the number of successful solves per planner route
// since process start (or the last ResetMethodCounts). Cache hits count
// under the method that originally produced the cached result; lplserve
// reports these through /v1/stats.
func MethodCounts() map[Method]int64 { return core.MethodCounts() }

// ResetMethodCounts zeroes the per-method solve counters.
func ResetMethodCounts() { core.ResetMethodCounts() }

// The lplserve HTTP service, embeddable in any mux. See the service wire
// types (SolveRequest and friends) for the JSON format and cmd/lplserve
// for the standalone binary.

// ServeConfig tunes the HTTP service: worker-pool size, admission-queue
// depth (429 beyond it), deadline clamps, and instance-size limits.
type ServeConfig = service.Config

// SolveRequest is the body of POST /v1/solve and one item of a
// BatchRequest. Graphs accept both JSON wire forms — an object
// {"n":…,"edges":[[u,v],…]} or a DIMACS document as a JSON string — or
// may be replaced by a GraphRef naming a graph interned via POST
// /v1/graphs.
type SolveRequest = service.SolveRequest

// SolveResponse is the body of a /v1/solve response and one NDJSON line
// of a /v1/batch stream: span, labeling, and the method/plan/cache
// provenance.
type SolveResponse = service.SolveResponse

// SolveOptionsWire is the JSON form of Options accepted by the service.
type SolveOptionsWire = service.WireOptions

// BatchRequest is the body of POST /v1/batch; results stream back as
// NDJSON in completion order.
type BatchRequest = service.BatchRequest

// GraphsResponse is the body of a POST /v1/graphs response: the graphRef
// to use in later solves, plus the interned instance's size.
type GraphsResponse = service.GraphsResponse

// StatsResponse is the body of GET /v1/stats: queue occupancy, admission
// counters, cache hit rate, intern-store counters, and per-method solve
// counts.
type StatsResponse = service.StatsResponse

// NewServeHandler returns the lplserve HTTP handler (the /v1/solve,
// /v1/batch, /v1/stats, and /healthz endpoints) backed by this process's
// shared solver pipeline and memoization cache. cfg may be nil for
// defaults. Mount it on any server or run cmd/lplserve.
func NewServeHandler(cfg *ServeConfig) http.Handler { return service.NewServer(cfg) }

// Solve computes an L(p)-labeling of g through the planned pipeline: the
// instance is routed to the cheapest applicable method (see the package
// comment) and always gets a labeling — disconnected graphs are solved
// per component, and instances outside every exact method's hypotheses
// fall back to approximations with recorded provenance. With nil options
// the planner runs free with verification on; when an exact method
// applies the result's Span equals λ_p(g) and Result.Exact is set.
func Solve(g *Graph, p Vector, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), g, p, opts)
}

// SolveContext is Solve under a context: cancellation and Options.Deadline
// propagate into the TSP engine's cooperative checkpoints, and anytime
// engines return their incumbent labeling (Result.Truncated) when the
// deadline fires.
func SolveContext(ctx context.Context, g *Graph, p Vector, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{Verify: true}
	}
	return core.SolveContext(ctx, g, p, opts)
}

// Portfolio races exact and heuristic TSP engines concurrently over one
// shared reduction and returns the best labeling found, always verified.
// With no explicit engines a size-appropriate roster is used. The race
// ends when an exact engine finishes (its result is optimal) or when ctx
// expires (the best anytime incumbent wins).
func Portfolio(ctx context.Context, g *Graph, p Vector, engines ...Algorithm) (*Result, error) {
	return core.Portfolio(ctx, g, p, engines...)
}

// BatchItem is one instance of a SolveBatch: a graph, its constraint
// vector, and an identifier echoed back on the result stream.
type BatchItem = core.BatchItem

// BatchResult is one element of the SolveBatch result stream.
type BatchResult = core.BatchResult

// BatchOptions configures SolveBatch (worker-pool size and per-item solve
// options).
type BatchOptions = core.BatchOptions

// SolveBatch solves many labeling instances through a bounded worker pool
// and streams results on the returned channel as they complete; see
// core.SolveBatch for the cancellation contract. As with Solve, omitted
// solve options default to the exact engine with verification on.
func SolveBatch(ctx context.Context, items []BatchItem, opts *BatchOptions) <-chan BatchResult {
	var o BatchOptions
	if opts != nil {
		o = *opts
	}
	if o.Options == nil {
		o.Options = &Options{Verify: true}
	}
	return core.SolveBatch(ctx, items, &o)
}

// Lambda returns λ_p(g), the minimum span, computed exactly (Corollary 1).
func Lambda(g *Graph, p Vector) (int, error) { return core.Lambda(g, p) }

// Approximate returns a labeling with span at most 1.5·λ_p(g) in
// polynomial time (Corollary 1, Christofides/Hoogeveen pipeline).
func Approximate(g *Graph, p Vector) (*Result, error) { return core.Approximate(g, p) }

// Heuristic runs the chained local-search engine (pass nil for defaults).
func Heuristic(g *Graph, p Vector, opts *ChainedOptions) (*Result, error) {
	return core.Heuristic(g, p, opts)
}

// Verify checks that l is a valid L(p)-labeling of g.
func Verify(g *Graph, p Vector, l Labeling) error { return labeling.Verify(g, p, l) }

// BruteForceExact computes λ_p(g) by ordering enumeration, independent of
// the reduction and of its preconditions (n ≤ 11). Intended for
// cross-validation.
func BruteForceExact(g *Graph, p Vector) (Labeling, int, error) {
	return labeling.BruteForceExact(g, p)
}

// GreedyFirstFit is the classical first-fit baseline in decreasing-degree
// order. Valid on any graph and p.
func GreedyFirstFit(g *Graph, p Vector) (Labeling, int, error) {
	return labeling.GreedyFirstFit(g, p, labeling.OrderDegree)
}

// TreeLambda21 solves L(2,1)-LABELING exactly on trees (Chang–Kuo-style
// Δ+1/Δ+2 decision with a matching-based feasibility DP) — the
// class-specific polynomial algorithm the paper contrasts with the
// diameter-gated TSP route. Errors if g is not a tree.
func TreeLambda21(g *Graph) (Labeling, int, error) { return labeling.TreeLambda21(g) }

// Diameter2Result is the Corollary 2 outcome; see SolveDiameter2.
type Diameter2Result = core.Diameter2Result

// SolveDiameter2 solves L(p,q)-LABELING on a diameter-≤2 graph via the
// PARTITION INTO PATHS equivalence (Corollary 2). Exact for
// n ≤ 22, heuristic beyond.
func SolveDiameter2(g *Graph, p, q int) (*Diameter2Result, error) {
	return core.SolveDiameter2(g, p, q)
}

// LambdaCograph computes λ_{p,q} exactly for a connected cograph of any
// size via the cotree path-cover recurrence (connected cographs have
// diameter ≤ 2, so Corollary 2 applies; no 2ⁿ machinery needed).
func LambdaCograph(g *Graph, p, q int) (int, error) { return core.LambdaCograph(g, p, q) }

// L1Exact computes λ for p = (1,…,1) of dimension k exactly, FPT in the
// neighborhood diversity of gᵏ (Theorem 4). No diameter condition.
func L1Exact(g *Graph, k int) (Labeling, int, error) { return core.L1Exact(g, k) }

// PmaxApprox returns a pmax-approximate labeling for any p on any graph,
// FPT in modular-width (Corollary 3).
func PmaxApprox(g *Graph, p Vector) (Labeling, int, error) { return core.PmaxApprox(g, p) }

// NeighborhoodDiversity returns nd(g).
func NeighborhoodDiversity(g *Graph) int {
	nd, _ := modular.ND(g)
	return nd
}

// ModularWidth returns mw(g) from the modular decomposition tree.
func ModularWidth(g *Graph) int { return modular.Width(g) }

// ReadGraph parses a graph in DIMACS edge format or a bare edge list.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in DIMACS edge format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Graph ingestion errors (test with errors.Is): malformed edges in any
// wire form — JSON object, DIMACS text, or the binary frame — are typed,
// so embedders can map them to client-error responses the way lplserve
// maps them to 400.
var (
	// ErrGraphSelfLoop reports an edge {v,v}.
	ErrGraphSelfLoop = graph.ErrSelfLoop
	// ErrGraphEdgeRange reports an edge endpoint outside [0, n).
	ErrGraphEdgeRange = graph.ErrEdgeRange
	// ErrGraphVertexCount reports a negative or absurdly large vertex
	// count (the wire limit guards decode-time allocation).
	ErrGraphVertexCount = graph.ErrVertexCount
	// ErrGraphBinaryFormat reports a malformed binary graph frame.
	ErrGraphBinaryFormat = graph.ErrBinaryFormat
)

// GraphBinaryContentType is the HTTP Content-Type of the binary graph
// wire form, accepted by POST /v1/solve and POST /v1/graphs.
const GraphBinaryContentType = graph.BinaryContentType

// AppendGraphBinary appends g's length-prefixed binary wire frame
// ("LPG1" magic, uvarint-delta-coded canonical edge list) to dst and
// returns the extended slice. The encoding is canonical: equal graphs
// produce equal frames.
func AppendGraphBinary(dst []byte, g *Graph) []byte { return graph.AppendBinary(dst, g) }

// EncodeGraphBinary writes g's binary wire frame to w.
func EncodeGraphBinary(w io.Writer, g *Graph) error { return graph.EncodeBinary(w, g) }

// DecodeGraphBinary decodes one binary frame from the front of data,
// returning the graph and the bytes remaining after the frame (the
// frame is self-delimiting, so callers can append their own envelope —
// /v1/solve frames a JSON envelope behind the graph this way).
func DecodeGraphBinary(data []byte) (*Graph, []byte, error) { return graph.DecodeBinary(data) }
