module lpltsp

go 1.24
